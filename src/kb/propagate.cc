#include "kb/propagate.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace classic {

// ---------------------------------------------------------------------------
// Mention scans
// ---------------------------------------------------------------------------

namespace {

void CollectFromForm(const NormalForm& nf, std::vector<IndId>* out) {
  for (const auto& [role, rr] : nf.roles()) {
    for (IndId f : rr.fillers) out->push_back(f);
    if (rr.value_restriction) CollectFromForm(*rr.value_restriction, out);
  }
  if (nf.enumeration()) {
    for (IndId m : *nf.enumeration()) out->push_back(m);
  }
}

}  // namespace

void CollectMentionedIndividuals(const NormalForm& nf,
                                 std::vector<IndId>* out) {
  CollectFromForm(nf, out);
}

bool MentionsIndividuals(const NormalForm& nf) {
  std::vector<IndId> mentions;
  CollectFromForm(nf, &mentions);
  return !mentions.empty();
}

// ---------------------------------------------------------------------------
// PropagationEngine
// ---------------------------------------------------------------------------

PropagationEngine::PropagationEngine(KnowledgeBase* kb,
                                     PropagationJournal* journal,
                                     const DynamicBitset* scope)
    : kb_(kb), journal_(journal), scope_(scope) {}

void PropagationEngine::Enqueue(IndId ind) {
  if (scope_ != nullptr && !scope_->Test(ind)) {
    // Defensive: the component closure should make this unreachable.
    pending_seeds_.push_back(ind);
    return;
  }
  if (queued_.Test(ind)) {
    ++dedup_hits_;
    CLASSIC_OBS_COUNT(kPropagationDedupHits);
    return;
  }
  queued_.Set(ind);
  next_.push_back(ind);
}

Status PropagationEngine::MergeInto(IndId ind, const NormalForm& nf) {
  if (scope_ != nullptr && !scope_->Test(ind)) {
    // Defensive: an out-of-scope derivation is deferred, not applied —
    // the Propagator drains these serially after the parallel join.
    pending_merges_.emplace_back(ind,
                                 kb_->normalizer_->Freeze(NormalForm(nf)));
    return Status::OK();
  }
  IndividualState& st = Touch(ind);
  NormalFormPtr merged = kb_->normalizer_->Meet(*st.derived, nf);
  if (merged->incoherent()) {
    return Status::Inconsistent(
        StrCat("update would make ", kb_->vocab_->IndividualName(ind),
               " incoherent (",
               IncoherenceKindName(merged->incoherence_kind()),
               "): ", merged->incoherence_reason()));
  }
  // Interning makes pointer identity a complete no-change test: both
  // sides come from the store, so structural equality implies the same
  // canonical object. The structural comparison remains as fallback for
  // non-interned configurations.
  const bool unchanged =
      merged == st.derived ||
      (merged->interned_id() != kNoNfId && st.derived->interned_id() != kNoNfId
           ? merged->interned_id() == st.derived->interned_id()
           : merged->Equals(*st.derived));
  if (!unchanged) {
    st.derived = merged;
    Enqueue(ind);
    // Whoever references this individual may now recognize more. A
    // scoped engine must also consult its own staged references: serial
    // runs write referenced_by_ immediately, so a host discovered
    // earlier in this same wavefront is visible here — the staging must
    // not hide it (it would skip exactly the re-derivations the serial
    // schedule performs).
    if (const std::set<IndId>* refs = kb_->referenced_by_.Find(ind)) {
      for (IndId host : *refs) Enqueue(host);
    }
    if (scope_ != nullptr) {
      auto staged = staged_refs_.find(ind);
      if (staged != staged_refs_.end()) {
        for (IndId host : staged->second) Enqueue(host);
      }
    }
  }
  return Status::OK();
}

Status PropagationEngine::Run() {
  std::vector<IndId> wave;
  while (!next_.empty()) {
    wave.clear();
    std::swap(wave, next_);
    for (IndId ind : wave) queued_.Reset(ind);
    ++waves_;
    max_wave_ = std::max(max_wave_, wave.size());
    for (IndId ind : wave) {
      CLASSIC_RETURN_NOT_OK(Step(ind));
    }
  }
  return Status::OK();
}

IndividualState& PropagationEngine::Touch(IndId ind) {
  IndividualState& st = kb_->MutableState(ind);
  journal_->undo.try_emplace(ind, st);
  return st;
}

Status PropagationEngine::Step(IndId ind) {
  ++steps_;
  CLASSIC_OBS_COUNT(kPropagationSteps);
  if (!kb_->IsClassicIndividual(ind)) {
    // Host individuals are immutable values: they are classified (they
    // can belong to enumerated / TEST / built-in concepts) but carry no
    // roles and never gain derived state, so rules do not apply.
    Realize(ind);
    return Status::OK();
  }
  CLASSIC_RETURN_NOT_OK(PropagateToFillers(ind));
  CLASSIC_RETURN_NOT_OK(PropagateCoref(ind));
  Realize(ind);
  CLASSIC_RETURN_NOT_OK(FireRules(ind));
  return Status::OK();
}

bool PropagationEngine::AddReference(IndId filler, IndId host) {
  if (scope_ == nullptr) {
    if (kb_->referenced_by_.Mutable(filler).insert(host).second) {
      journal_->refs_added.emplace_back(filler, host);
      return true;
    }
    return false;
  }
  // Scoped: the shared index must not be written from a worker (the map
  // overlay is not thread-safe); Find() is a safe concurrent read, so
  // known pairs are filtered here and the rest staged for the commit.
  const std::set<IndId>* existing = kb_->referenced_by_.Find(filler);
  if (existing != nullptr && existing->count(host) > 0) return false;
  return staged_refs_[filler].insert(host).second;
}

void PropagationEngine::AddPosting(RoleId role, IndId filler, IndId host) {
  if (scope_ == nullptr) {
    if (kb_->fills_index_.Add(role, filler, host, *kb_->vocab_)) {
      journal_->postings_added.emplace_back(FillsIndex::Key(role, filler),
                                            host);
    }
    return;
  }
  // Scoped: filter against the shared index through the concurrent-read
  // safe Find (postings never drive re-enqueues, so unlike staged_refs_
  // nothing downstream needs to consult the staging mid-run).
  const std::set<IndId>* existing = kb_->fills_index_.Postings(role, filler);
  if (existing != nullptr && existing->count(host) > 0) return;
  staged_postings_[FillsIndex::Key(role, filler)].insert(host);
}

Status PropagationEngine::PropagateToFillers(IndId ind) {
  NormalFormPtr derived = kb_->StateRef(ind).derived;  // snapshot
  for (const auto& [role, rr] : derived->roles()) {
    for (IndId filler : rr.fillers) {
      AddReference(filler, ind);
      AddPosting(role, filler, ind);
      if (!rr.value_restriction || rr.value_restriction->IsThing()) {
        continue;
      }
      const NormalForm& vr = *rr.value_restriction;
      if (kb_->IsClassicIndividual(filler)) {
        Status st = MergeInto(filler, vr);
        if (!st.ok()) {
          return st.WithContext(
              StrCat("propagating (ALL ",
                     kb_->vocab_->symbols().Name(kb_->vocab_->role(role).name),
                     " ...) from ", kb_->vocab_->IndividualName(ind)));
        }
      } else if (!kb_->Satisfies(filler, vr)) {
        return Status::Inconsistent(
            StrCat("host filler ", kb_->vocab_->IndividualName(filler),
                   " of role ",
                   kb_->vocab_->symbols().Name(kb_->vocab_->role(role).name),
                   " on ", kb_->vocab_->IndividualName(ind),
                   " violates the value restriction"));
      }
    }
  }
  return Status::OK();
}

Status PropagationEngine::PropagateCoref(IndId ind) {
  NormalFormPtr derived = kb_->StateRef(ind).derived;
  if (derived->coref().empty()) return Status::OK();
  for (const auto& cls : derived->coref().CanonicalClasses()) {
    std::optional<IndId> value;
    for (const auto& path : cls) {
      std::optional<IndId> v = kb_->ResolvePath(ind, path);
      if (!v) continue;
      if (value && *value != *v) {
        return Status::Inconsistent(
            StrCat("co-reference conflict on ", kb_->vocab_->IndividualName(ind),
                   ": paths resolve to ", kb_->vocab_->IndividualName(*value),
                   " and ", kb_->vocab_->IndividualName(*v)));
      }
      value = v;
    }
    if (!value) continue;
    // Fill the last step of every path whose prefix resolves.
    for (const auto& path : cls) {
      RolePath prefix(path.begin(), path.end() - 1);
      std::optional<IndId> holder = kb_->ResolvePath(ind, prefix);
      if (!holder) continue;
      const RoleRestriction& rr =
          kb_->StateRef(*holder).derived->role(path.back());
      if (rr.fillers.count(*value) > 0) continue;
      NormalForm fill;
      fill.MutableRole(path.back(), *kb_->vocab_)->fillers.insert(*value);
      fill.Tighten(*kb_->vocab_);
      Status st = MergeInto(*holder, fill);
      if (!st.ok()) return st.WithContext("propagating SAME-AS filler");
    }
  }
  return Status::OK();
}

void PropagationEngine::Realize(IndId ind) {
  ++realizations_;
  CLASSIC_OBS_COUNT(kRealizations);
  obs::TraceSpan span("realize");
  const Taxonomy& tax = kb_->taxonomy_;
  const std::set<NodeId>& already = kb_->StateRef(ind).subsumer_nodes;
  std::set<NodeId> subs;
  std::deque<NodeId> queue(tax.roots().begin(), tax.roots().end());
  std::set<NodeId> seen(tax.roots().begin(), tax.roots().end());
  while (!queue.empty()) {
    NodeId node = queue.front();
    queue.pop_front();
    // Recognition is monotone ("every individual can move into a class
    // at most once"), so previously recognized nodes need no re-test.
    if (already.count(node) == 0 && !kb_->Satisfies(ind, *tax.NodeForm(node))) {
      continue;
    }
    subs.insert(node);
    for (NodeId child : tax.Children(node)) {
      if (seen.insert(child).second) queue.push_back(child);
    }
  }
  const IndividualState& st = kb_->StateRef(ind);
  // Monotonicity guard: recognition never retracts (paper Section 5).
  subs.insert(st.subsumer_nodes.begin(), st.subsumer_nodes.end());
  if (subs == st.subsumer_nodes) return;
  // Touch may path-copy the record's chunk; `st`/`already` stay valid
  // (they alias the shared pre-copy chunk) but are stale from here on.
  IndividualState& stw = Touch(ind);
  for (NodeId node : subs) {
    if (stw.subsumer_nodes.count(node) == 0) {
      if (scope_ == nullptr) {
        if (kb_->instances_.Mutable(node).insert(ind).second) {
          journal_->instance_inserts.emplace_back(node, ind);
        }
      } else {
        // The instance index is shared across components; stage the
        // insertion for the Propagator's serial commit.
        staged_instances_.insert({node, ind});
      }
    }
  }
  stw.subsumer_nodes = std::move(subs);
  stw.msc.clear();
  for (NodeId node : stw.subsumer_nodes) {
    bool most_specific = true;
    for (NodeId child : tax.Children(node)) {
      if (stw.subsumer_nodes.count(child) > 0) {
        most_specific = false;
        break;
      }
    }
    if (most_specific) stw.msc.insert(node);
  }
}

Status PropagationEngine::FireRules(IndId ind) {
  // Snapshot: rule application can change subsumer_nodes (via Enqueue /
  // later Realize), which re-runs Step anyway.
  std::vector<size_t> pending;
  {
    const IndividualState& st = kb_->StateRef(ind);
    for (NodeId node : st.subsumer_nodes) {
      const std::vector<size_t>* on_node = kb_->rules_on_node_.Find(node);
      if (on_node == nullptr) continue;
      for (size_t idx : *on_node) {
        if (st.applied_rules.count(idx) == 0) pending.push_back(idx);
      }
    }
  }
  for (size_t idx : pending) {
    Touch(ind).applied_rules.insert(idx);
    ++rule_firings_;
    CLASSIC_OBS_COUNT(kRuleFirings);
    Status st = MergeInto(ind, *kb_->rules_[idx].consequent);
    if (!st.ok()) {
      return st.WithContext(StrCat(
          "firing rule on ",
          kb_->vocab_->symbols().Name(
              kb_->vocab_->concept_info(kb_->rules_[idx].antecedent_concept)
                  .name)));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Propagator
// ---------------------------------------------------------------------------

Propagator::Propagator(KnowledgeBase* kb, ThreadPool* pool)
    : kb_(kb), pool_(pool) {}

Status Propagator::Run(
    const std::vector<IndId>& seeds,
    const std::vector<std::pair<IndId, NormalFormPtr>>& merges) {
#if CLASSIC_OBS
  const uint64_t start_ns = obs::MonotonicNanos();
#endif
  // Duplicate seed ids are a pure waste: each dupe would re-enter the
  // first wavefront (one extra re-normalization of an unchanged
  // individual). Dedupe up front, preserving first-occurrence order.
  std::vector<IndId> uniq;
  uniq.reserve(seeds.size());
  {
    DynamicBitset seen;
    for (IndId s : seeds) {
      if (seen.Test(s)) {
        CLASSIC_OBS_COUNT(kPropagationDedupHits);
        continue;
      }
      seen.Set(s);
      uniq.push_back(s);
    }
  }

  size_t waves = 0;
  size_t max_wave = 0;
  size_t num_components = 1;
  Status result;

  // A rule whose consequent mentions individuals can create role edges
  // the partition cannot predict; such databases propagate serially.
  std::vector<Component> comps;
  if (pool_ != nullptr && !kb_->rules_mention_inds_ &&
      uniq.size() + merges.size() >= 2) {
    comps = Partition(uniq, merges);
  }

  if (comps.size() < 2) {
    result = RunSerial(uniq, merges, &waves, &max_wave);
  } else {
    num_components = comps.size();
    // Pre-materialize every state record (StateRef's slow path locks and
    // appends, racing the lock-free size read on the fast path), then
    // pre-own every member's chunk so no worker path-copies a chunk
    // another worker is concurrently reading.
    const IndId total = static_cast<IndId>(kb_->vocab_->num_individuals());
    if (total > 0) kb_->StateRef(total - 1);
    for (const Component& c : comps) {
      for (IndId m : c.members) kb_->MutableState(m);
    }

    // Largest components first: the pool's dynamic scheduler then fills
    // the tail of the schedule with the small ones.
    std::vector<size_t> order(comps.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return comps[a].members.size() > comps[b].members.size();
    });

    std::vector<PropagationJournal> journals(comps.size());
    std::vector<Status> results(comps.size(), Status::OK());
    std::vector<std::unique_ptr<PropagationEngine>> engines(comps.size());
    pool_->ParallelFor(comps.size(), [&](size_t k) {
      const size_t ci = order[k];
      Component& c = comps[ci];
      auto eng =
          std::make_unique<PropagationEngine>(kb_, &journals[ci], &c.scope);
      Status st = Status::OK();
      for (const auto& [ind, nf] : c.merges) {
        st = eng->MergeInto(ind, *nf);
        if (!st.ok()) break;
      }
      if (st.ok()) {
        for (IndId s : c.seeds) eng->Enqueue(s);
        st = eng->Run();
      }
      results[ci] = std::move(st);
      engines[ci] = std::move(eng);
      obs::FlushLocalCounters();
    });

    // Everything below is back on the single writer thread, in
    // deterministic component order. Journals merge unconditionally
    // (failed runs must roll back too); first-touch wins because earlier
    // *phases* of this update may have journaled the same individual.
    for (PropagationJournal& j : journals) {
      for (auto& [ind, saved] : j.undo) {
        journal_.undo.try_emplace(ind, std::move(saved));
      }
      for (const auto& e : j.instance_inserts) {
        journal_.instance_inserts.push_back(e);
      }
      for (const auto& e : j.refs_added) journal_.refs_added.push_back(e);
      for (const auto& e : j.postings_added) journal_.postings_added.push_back(e);
    }
    for (const auto& eng : engines) {
      waves += eng->waves();
      max_wave = std::max(max_wave, eng->max_wave());
      kb_->stats_.propagation_steps += eng->steps();
      kb_->stats_.realizations += eng->realizations();
      kb_->stats_.rule_firings += eng->rule_firings();
    }
    // Every component ran to its own bounded fixed point (no early
    // abort), so the failing set is schedule-independent; report the
    // first failure in component order.
    result = Status::OK();
    for (const Status& st : results) {
      if (!st.ok()) {
        result = st;
        break;
      }
    }
    if (result.ok()) {
      // Commit the staged index updates.
      for (const auto& eng : engines) {
        for (const auto& [node, ind] : eng->staged_instances()) {
          if (kb_->instances_.Mutable(node).insert(ind).second) {
            journal_.instance_inserts.emplace_back(node, ind);
          }
        }
        for (const auto& [filler, hosts] : eng->staged_refs()) {
          std::set<IndId>& refs = kb_->referenced_by_.Mutable(filler);
          for (IndId h : hosts) {
            if (refs.insert(h).second) {
              journal_.refs_added.emplace_back(filler, h);
            }
          }
        }
        for (const auto& [key, hosts] : eng->staged_postings()) {
          for (IndId h : hosts) {
            if (kb_->fills_index_.Add(FillsIndex::KeyRole(key),
                                      FillsIndex::KeyFiller(key), h,
                                      *kb_->vocab_)) {
              journal_.postings_added.emplace_back(key, h);
            }
          }
        }
      }
      // Drain deferred out-of-scope work serially (normally empty; the
      // closure construction makes deferrals unreachable).
      std::vector<IndId> pend_seeds;
      std::vector<std::pair<IndId, NormalFormPtr>> pend_merges;
      for (const auto& eng : engines) {
        pend_seeds.insert(pend_seeds.end(), eng->pending_seeds().begin(),
                          eng->pending_seeds().end());
        pend_merges.insert(pend_merges.end(), eng->pending_merges().begin(),
                           eng->pending_merges().end());
      }
      if (!pend_seeds.empty() || !pend_merges.empty()) {
        size_t w = 0;
        size_t mw = 0;
        result = RunSerial(pend_seeds, pend_merges, &w, &mw);
        waves += w;
        max_wave = std::max(max_wave, mw);
      }
    }
  }

#if CLASSIC_OBS
  CLASSIC_OBS_COUNT_N(kPropagationComponents, num_components);
  CLASSIC_OBS_COUNT_N(kPropagationWavefronts, waves);
  obs::CounterMaxTo(obs::Counter::kPropagationMaxWavefront, max_wave);
  obs::RecordLatency(obs::Op::kPropagate, obs::MonotonicNanos() - start_ns);
#endif
  return result;
}

Status Propagator::RunSerial(
    const std::vector<IndId>& seeds,
    const std::vector<std::pair<IndId, NormalFormPtr>>& merges, size_t* waves,
    size_t* max_wave) {
  PropagationEngine engine(kb_, &journal_);
  Status st = Status::OK();
  for (const auto& [ind, nf] : merges) {
    st = engine.MergeInto(ind, *nf);
    if (!st.ok()) break;
  }
  if (st.ok()) {
    for (IndId s : seeds) engine.Enqueue(s);
    st = engine.Run();
  }
  *waves = engine.waves();
  *max_wave = engine.max_wave();
  kb_->stats_.propagation_steps += engine.steps();
  kb_->stats_.realizations += engine.realizations();
  kb_->stats_.rule_firings += engine.rule_firings();
  return st;
}

void Propagator::RollbackAll() {
  for (auto& [ind, saved] : journal_.undo) {
    kb_->MutableState(ind) = std::move(saved);
  }
  for (const auto& [node, ind] : journal_.instance_inserts) {
    kb_->instances_.Mutable(node).erase(ind);
  }
  for (const auto& [filler, host] : journal_.refs_added) {
    kb_->referenced_by_.Mutable(filler).erase(host);
  }
  for (const auto& [key, host] : journal_.postings_added) {
    kb_->fills_index_.Remove(FillsIndex::KeyRole(key),
                             FillsIndex::KeyFiller(key), host);
  }
  ++kb_->stats_.rejected_updates;
  journal_ = PropagationJournal{};
}

std::vector<Propagator::Component> Propagator::Partition(
    const std::vector<IndId>& seeds,
    const std::vector<std::pair<IndId, NormalFormPtr>>& merges) const {
  constexpr uint32_t kNone = 0xffffffffu;
  const size_t n = kb_->vocab_->num_individuals();
  std::vector<uint32_t> label(n, kNone);  // discovery label per individual
  std::vector<uint32_t> parent;           // union-find over labels
  std::vector<std::vector<IndId>> found;  // members per discovery label

  auto find = [&parent](uint32_t c) {
    while (parent[c] != c) {
      parent[c] = parent[parent[c]];
      c = parent[c];
    }
    return c;
  };
  auto unite = [&parent, &find](uint32_t a, uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  };

  std::vector<IndId> stack;
  std::vector<IndId> mentions;

  // BFS closure from one root over the role graph: every individual a
  // derived form mentions (fillers at any depth, enumeration members)
  // plus the reverse-filler index. Everything a component's fixed point
  // can read or write is inside this closure — except host individuals,
  // which are immutable leaves: the first component to discover one
  // claims its (idempotent) realization, and later components read it
  // without synchronization instead of being glued to the claimant.
  auto explore = [&](IndId root) {
    if (root >= n || label[root] != kNone) return;
    const uint32_t c = static_cast<uint32_t>(parent.size());
    parent.push_back(c);
    found.emplace_back();
    label[root] = c;
    found[c].push_back(root);
    if (!kb_->IsClassicIndividual(root)) return;  // host: no edges
    stack.assign(1, root);
    while (!stack.empty()) {
      IndId ind = stack.back();
      stack.pop_back();
      mentions.clear();
      CollectMentionedIndividuals(*kb_->StateRef(ind).derived, &mentions);
      if (const std::set<IndId>* refs = kb_->referenced_by_.Find(ind)) {
        mentions.insert(mentions.end(), refs->begin(), refs->end());
      }
      for (IndId m : mentions) {
        if (m >= n) continue;
        if (!kb_->IsClassicIndividual(m)) {
          if (label[m] == kNone) {
            label[m] = c;
            found[c].push_back(m);
          }
          continue;
        }
        if (label[m] == kNone) {
          label[m] = c;
          found[c].push_back(m);
          stack.push_back(m);
        } else {
          unite(c, label[m]);
        }
      }
    }
  };

  for (IndId s : seeds) explore(s);
  for (const auto& [ind, nf] : merges) {
    explore(ind);
    // The merge payload itself creates role edges to everything it
    // mentions the moment it is applied.
    mentions.clear();
    CollectMentionedIndividuals(*nf, &mentions);
    for (IndId m : mentions) {
      if (m >= n) continue;
      explore(m);
      if (kb_->IsClassicIndividual(m)) unite(label[ind], label[m]);
    }
  }

  // Group discovery labels by union-find root, ascending — label order is
  // discovery order, so the result is deterministic for a given input.
  std::map<uint32_t, Component> grouped;
  for (uint32_t c = 0; c < parent.size(); ++c) {
    Component& comp = grouped[find(c)];
    for (IndId m : found[c]) {
      comp.members.push_back(m);
      comp.scope.Set(m);
    }
  }
  for (IndId s : seeds) grouped[find(label[s])].seeds.push_back(s);
  for (const auto& me : merges) {
    grouped[find(label[me.first])].merges.push_back(me);
  }
  std::vector<Component> out;
  out.reserve(grouped.size());
  for (auto& [root, comp] : grouped) out.push_back(std::move(comp));
  return out;
}

}  // namespace classic
