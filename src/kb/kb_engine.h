// KbEngine: snapshot-isolated parallel query serving.
//
// One engine wraps one CLASSIC database for concurrent use:
//
//   - a single writer thread calls Mutate() (or edits master() directly
//     and calls Publish()); every successful mutation round publishes a
//     fresh immutable epoch (kb/epoch.h). Publication is a copy-on-write
//     fork — O(mutations since the last publish), not O(database) — so
//     the engine can afford to keep a ring of recent epochs alive and
//     serve "as of epoch N" queries against them (QueryRequest::AsOf);
//   - any number of reader threads call snapshot() / ServeQuery() /
//     QueryBatch(); readers never block the writer and never observe a
//     half-applied update — they hold whole-database snapshots;
//   - QueryBatch fans a batch of requests across a thread pool, all
//     evaluated against ONE snapshot acquired at batch start, so a batch
//     is internally consistent and its answers are byte-identical to
//     evaluating the same requests serially against that snapshot
//     (tests/parallel_diff_test.cc holds the engine to exactly that).
//
// Serving covers every read entry point of the library: extensional
// queries (ask / ask-possible), intensional answers (ask-description),
// conjunctive path queries, and introspection (describe-individual, most
// specific concepts, instances-of).

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "kb/epoch.h"
#include "kb/knowledge_base.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "sexpr/sexpr.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace classic {

/// \brief What a serving request asks for. `text` is interpreted per
/// kind: a query expression for the query kinds, an individual name for
/// the individual kinds, a concept name for kInstancesOf.
///
/// Prefer the named constructors (QueryRequest::Ask(...) etc.) over
/// aggregate initialization: they read at the call site and cannot get
/// the kind/text pairing wrong.
struct QueryRequest {
  enum class Kind {
    /// ask-necessary-set: individuals known to satisfy the query.
    kAsk,
    /// ask-possible-set: individuals not provably excluded.
    kAskPossible,
    /// ask-description: the intensional answer (rendered description +
    /// most specific named concepts).
    kAskDescription,
    /// Conjunctive path query "(select (?x ...) atoms...)"; answers are
    /// rows of display names.
    kPathQuery,
    /// ind-aspect-style full description of one individual.
    kDescribeIndividual,
    /// Most specific named concepts of one individual.
    kMostSpecificConcepts,
    /// Known instances of one named concept.
    kInstancesOf,
  };

  Kind kind = Kind::kAsk;
  std::string text;
  /// Epoch to evaluate against: 0 = the batch's snapshot (current). A
  /// nonzero value routes the request to that retained epoch — O(delta)
  /// publication keeps a short ring of recent epochs alive (chunk storage
  /// is shared, so a retained epoch costs only its delta). Requests
  /// naming an unretained epoch fail with NotFound.
  uint64_t as_of_epoch = 0;
  /// When set, the answer's first value is the query plan the planner
  /// chose (query/planner.h), rendered as `(plan <kind> <tree>)` with
  /// estimated and actual per-node cardinalities. The remaining values
  /// are the ordinary answer — explain never changes them.
  bool explain = false;

  /// Fluent as-of marker: `QueryRequest::Ask("(...)").AsOf(3)`.
  QueryRequest AsOf(uint64_t epoch) && {
    as_of_epoch = epoch;
    return std::move(*this);
  }

  /// Fluent explain marker: `QueryRequest::Ask("(...)").Explain()`.
  QueryRequest Explain() && {
    explain = true;
    return std::move(*this);
  }

  // Named constructors, one per kind.
  static QueryRequest Ask(std::string query);
  static QueryRequest AskPossible(std::string query);
  static QueryRequest AskDescription(std::string query);
  static QueryRequest PathQuery(std::string select_expr);
  static QueryRequest DescribeIndividual(std::string individual);
  static QueryRequest MostSpecificConcepts(std::string individual);
  static QueryRequest InstancesOf(std::string concept_name);

  // --- Canonical serialization ---------------------------------------------
  //
  // One request surface for in-process callers, the repl's epoch ops and
  // the wire protocol (docs/PROTOCOL.md). The form is
  //
  //   (request <kind-symbol> "<text>")                   current epoch
  //   (request <kind-symbol> "<text>" <epoch>)           as-of request
  //   (request <kind-symbol> "<text>" explain)           explained
  //   (request <kind-symbol> "<text>" <epoch> explain)   both
  //
  // with <kind-symbol> the stable QueryKindName ("ask", "path-query",
  // ...). The optional positive-integer epoch always precedes the
  // optional `explain` symbol. FromSexpr(ToSexpr()) reproduces
  // kind/text/as_of_epoch/explain exactly.

  sexpr::Value ToSexpr() const;
  std::string ToWire() const;  ///< ToSexpr() rendered to concrete syntax.
  static Result<QueryRequest> FromSexpr(const sexpr::Value& v);
  static Result<QueryRequest> FromWire(const std::string& text);

  bool operator==(const QueryRequest& other) const {
    return kind == other.kind && text == other.text &&
           as_of_epoch == other.as_of_epoch && explain == other.explain;
  }
};

/// \brief Stable serialized name of a request kind ("ask", "path-query",
/// "instances-of", ...). Shared with the obs layer's Op names, so the
/// classic_stats CLI, metrics JSON and tests all speak one vocabulary.
const char* QueryKindName(QueryRequest::Kind kind);

/// \brief Inverse of QueryKindName; nullopt for unknown names (including
/// the writer-side op names "mutate"/"publish", which are not request
/// kinds).
std::optional<QueryRequest::Kind> QueryKindFromName(std::string_view name);

/// \brief The obs histogram slot for a request kind.
obs::Op ToObsOp(QueryRequest::Kind kind);

/// \brief Per-query inference work: wall time plus the counter deltas
/// (subsumption tests, memo hits, instance checks, ...) attributable to
/// serving this one request. All zeros when CLASSIC_OBS is compiled out.
struct QueryStats {
  uint64_t wall_nanos = 0;
  obs::CounterArray counters{};

  uint64_t counter(obs::Counter c) const {
    return counters[static_cast<size_t>(c)];
  }
};

/// \brief Outcome of one request: an error status, or a list of rendered
/// answer values (display names, rows, or a description), plus the
/// inference work the answer cost.
struct QueryAnswer {
  Status status;
  std::vector<std::string> values;
  QueryStats stats;

  /// Canonical one-string rendering (status category + values joined
  /// with unit separators; separator and escape bytes inside a value are
  /// escaped so distinct value lists can never collide). `stats` is
  /// excluded — the differential harness compares these byte-for-byte
  /// between serial and parallel runs, and wall times differ.
  std::string Canonical() const;

  // --- Canonical serialization ---------------------------------------------
  //
  // The wire form of an answer (docs/PROTOCOL.md):
  //
  //   (answer <code-symbol> "<message>" ("<value>" ...))
  //
  // with <code-symbol> the StatusCodeName ("OK", "NotFound", ...).
  // `stats` is deliberately not serialized: it is per-process
  // measurement, not part of the answer value (Canonical() excludes it
  // for the same reason).

  sexpr::Value ToSexpr() const;
  std::string ToWire() const;
  static Result<QueryAnswer> FromSexpr(const sexpr::Value& v);
  static Result<QueryAnswer> FromWire(const std::string& text);
};

/// \brief The concurrent serving engine (single writer, many readers).
class KbEngine {
 public:
  struct Options {
    /// Worker threads for QueryBatch; 0 = std::thread::hardware_concurrency.
    size_t num_threads = 0;
  };

  KbEngine();
  explicit KbEngine(Options options);
  ~KbEngine();

  KbEngine(const KbEngine&) = delete;
  KbEngine& operator=(const KbEngine&) = delete;

  // --- Writer side (one thread) ------------------------------------------

  /// The private master database. Only the writer thread may touch it;
  /// changes become visible to readers at the next Publish().
  KnowledgeBase& master() { return *master_; }

  /// \brief Replaces the master (e.g. with a Clone() of a database built
  /// through the classic::Database facade) and publishes it as a fresh
  /// epoch. Writer-side only.
  SnapshotPtr Reset(std::unique_ptr<KnowledgeBase> master);

  /// \brief Adopts `source` as the master via its O(delta) copy-on-write
  /// Clone() and publishes. The source stays usable; the engine's copies
  /// share chunk storage with it.
  SnapshotPtr ResetFrom(const KnowledgeBase& source);

  /// \brief Captures `source`'s current state as the next epoch of the
  /// SAME lineage: unlike Reset/ResetFrom, the retained-epoch ring is
  /// kept, so earlier captures stay queryable as-of. Successive captures
  /// of an evolving database share chunk storage with it and with each
  /// other — each publish costs only that round's delta. Non-const: the
  /// source's copy-down counters are drained into the
  /// `publish-chunks-copied` figure for this epoch.
  SnapshotPtr PublishFrom(KnowledgeBase& source);

  /// \brief Applies `fn` to the master and, if it succeeds, publishes a
  /// new epoch. On failure nothing is published (individual KB updates
  /// are themselves atomic, so the master is still consistent).
  Status Mutate(const std::function<Status(KnowledgeBase*)>& fn);

  /// \brief Lends the engine's thread pool to the master's propagation
  /// engine: mutations partition their deduction wavefronts into
  /// independent components and run them on the pool (kb/propagate.h).
  /// Single-writer semantics are unchanged — the parallelism is internal
  /// to one mutation, readers still only ever see published epochs.
  /// Survives Reset/ResetFrom/PublishFrom (re-applied to the new master).
  void SetParallelMutation(bool enabled);

  /// \brief Forks the master copy-on-write (O(delta) in the mutations
  /// since the previous publish — chunked stores share chunk
  /// directories, instance indexes share frozen delta layers), freezes
  /// its visible-individual bound and atomically installs it as the
  /// current epoch. Returns the new snapshot. Readers already holding
  /// older epochs are unaffected; the engine additionally retains the
  /// last kRetainedEpochs epochs for as-of serving, after which retired
  /// epochs are reclaimed when their last holder releases them.
  SnapshotPtr Publish();

  /// How many recent epochs Publish keeps alive for as-of queries.
  static constexpr size_t kRetainedEpochs = 8;

  // --- Reader side (any thread) ------------------------------------------

  /// \brief The current epoch (null until the first Publish).
  SnapshotPtr snapshot() const;

  /// \brief Epoch number of the current snapshot (0 before any publish).
  uint64_t epoch() const;

  /// \brief The retained snapshot with epoch number `epoch`, or null if
  /// that epoch was never published or has rotated out of the ring.
  SnapshotPtr SnapshotAt(uint64_t epoch) const;

  /// \brief Epoch numbers currently retained for as-of serving (oldest
  /// first; the last entry is the current epoch).
  std::vector<uint64_t> RetainedEpochs() const;

  /// \brief Evaluates one request against an arbitrary database view.
  /// Pure read (modulo internally synchronized caches); thread-safe on a
  /// snapshot's kb().
  static QueryAnswer ServeQuery(const KnowledgeBase& kb,
                                const QueryRequest& request);

  /// \brief Serves a batch against ONE snapshot acquired on entry, fanned
  /// across the engine's pool (`num_threads` > 0 overrides the pool size
  /// with a temporary pool — the differential tests sweep 1/4/8).
  /// Answer i always corresponds to request i. Fails every request with
  /// NotFound if nothing has been published yet.
  std::vector<QueryAnswer> QueryBatch(const std::vector<QueryRequest>& requests,
                                      size_t num_threads = 0);

  /// \brief Same, against a caller-supplied snapshot. Requests carrying a
  /// nonzero `as_of_epoch` are routed to that retained epoch instead (and
  /// fail with NotFound if it is no longer retained).
  std::vector<QueryAnswer> QueryBatchOn(const KbSnapshot& snap,
                                        const std::vector<QueryRequest>& requests,
                                        size_t num_threads = 0);

  // --- Observability ------------------------------------------------------

  /// \brief Point-in-time copy of the process-wide metrics registry:
  /// every counter total and per-operation latency histogram. All zeros
  /// when CLASSIC_OBS is compiled out.
  obs::MetricsSnapshot MetricsSnapshot() const;

 private:
  /// The uninstrumented dispatch body behind ServeQuery.
  static QueryAnswer ServeQueryImpl(const KnowledgeBase& kb,
                                    const QueryRequest& request);

  std::unique_ptr<KnowledgeBase> master_;
  /// Whether mutations may schedule propagation components on pool_.
  bool parallel_mutation_ = false;
  std::atomic<uint64_t> epoch_counter_{0};
  /// Current epoch; written by Publish (writer), read by everyone.
  std::shared_ptr<const KbSnapshot> current_;
  /// Ring of the last kRetainedEpochs published epochs (oldest first),
  /// kept alive for as-of queries. Guarded by current_mutex_.
  std::vector<std::shared_ptr<const KbSnapshot>> retained_;
  mutable std::mutex current_mutex_;

  ThreadPool pool_;
};

}  // namespace classic
