// Explanation of inferences.
//
// The deployed CLASSIC system grew an explanation facility (its deductions
// had to be auditable by the configurators using it); this module provides
// that capability for the two central judgments:
//
//   - why does (or doesn't) individual i satisfy concept C?
//   - why does (or doesn't) concept A subsume concept B?
//
// Explanations mirror the structural checks one-for-one, so every leaf
// corresponds to a concrete constraint: a missing primitive, a cardinality
// bound not yet derivable, a filler outside a value restriction, an
// unentailed co-reference, a TEST that returned false.

#pragma once

#include <string>
#include <vector>

#include "kb/knowledge_base.h"

namespace classic {

/// \brief One node of an explanation tree.
struct Explanation {
  /// Whether the judgment at this node holds.
  bool holds = false;
  /// Human-readable statement of the (sub-)judgment.
  std::string summary;
  /// Sub-judgments this one decomposes into.
  std::vector<Explanation> parts;

  /// \brief Renders as an indented tree with [ok]/[NO] markers.
  std::string ToString(int indent = 0) const;
};

/// \brief Explains the open-world instance test `kb.Satisfies(ind, nf)`.
Explanation ExplainSatisfies(const KnowledgeBase& kb, IndId ind,
                             const NormalForm& nf);

/// \brief Explains structural subsumption between two normal forms.
Explanation ExplainSubsumes(const KnowledgeBase& kb,
                            const NormalForm& general,
                            const NormalForm& specific);

}  // namespace classic
