#include "kb/knowledge_base.h"

#include <algorithm>

#include "kb/propagate.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "subsume/subsume.h"
#include "util/string_util.h"

namespace classic {

namespace {

const std::set<IndId>& EmptyIndSet() {
  static const std::set<IndId> kEmpty;
  return kEmpty;
}

bool IsReservedConceptName(std::string_view name) {
  static const char* kReserved[] = {"THING",  "CLASSIC-THING", "HOST-THING",
                                    "INTEGER", "REAL",         "NUMBER",
                                    "STRING",  "BOOLEAN",      "NOTHING"};
  for (const char* r : kReserved) {
    if (name == r) return true;
  }
  return false;
}

/// Separates CLOSE conjuncts from the descriptive part of an individual
/// expression. CLOSE may appear at the top level or under AND only (the
/// parser forbids it under ALL already, and normalization would reject
/// it).
void SplitCloseConjuncts(const DescPtr& expr, std::vector<DescPtr>* rest,
                         std::vector<Symbol>* close_roles) {
  if (expr->kind() == DescKind::kClose) {
    close_roles->push_back(expr->role());
    return;
  }
  if (expr->kind() == DescKind::kAnd) {
    for (const DescPtr& c : expr->conjuncts()) {
      SplitCloseConjuncts(c, rest, close_roles);
    }
    return;
  }
  rest->push_back(expr);
}

}  // namespace

// The propagation machinery itself (wave-based worklist engine, component
// partitioner, parallel scheduler) lives in kb/propagate.{h,cc}; one
// Propagator instance runs one update to a fixed point, journaling every
// touched structure so a detected inconsistency rolls the whole update
// back (assert-ind is atomic).


// ---------------------------------------------------------------------------
// KnowledgeBase
// ---------------------------------------------------------------------------

KnowledgeBase::KnowledgeBase()
    : vocab_(std::make_shared<Vocabulary>()),
      normalizer_(std::make_shared<Normalizer>(vocab_.get())),
      taxonomy_(vocab_.get()) {}

// The copy-on-write epoch copy: vocabulary, normalizer and subsumption
// memo are shared outright (they are internally synchronized interning
// caches whose growth never changes database meaning); the chunked
// stores share chunk directories; the delta maps freeze their overlays
// and share every layer. Cost is O(accumulated delta), independent of
// database size.
KnowledgeBase::KnowledgeBase(const KnowledgeBase& other)
    : vocab_(other.vocab_),
      normalizer_(other.normalizer_),
      taxonomy_(other.taxonomy_, other.vocab_.get()),
      states_(other.states_),
      visible_ind_limit_(other.visible_ind_limit_),
      base_log_(other.base_log_),
      instances_(other.instances_.Fork()),
      rules_on_node_(other.rules_on_node_.Fork()),
      rules_(other.rules_),
      rules_mention_inds_(other.rules_mention_inds_),
      referenced_by_(other.referenced_by_.Fork()),
      fills_index_(other.fills_index_.Fork()),
      stats_(other.stats_) {}

std::unique_ptr<KnowledgeBase> KnowledgeBase::Clone() const {
  return std::unique_ptr<KnowledgeBase>(new KnowledgeBase(*this));
}

size_t KnowledgeBase::TakeCowCopyCount() {
  return states_.TakeChunkCopies() + base_log_.TakeChunkCopies() +
         instances_.TakeValueCopies() + referenced_by_.TakeValueCopies() +
         fills_index_.TakeValueCopies() + rules_on_node_.TakeValueCopies() +
         taxonomy_.TakeCowCopies();
}

size_t KnowledgeBase::ApproxSharedCowBytes() const {
  return states_.ApproxChunkBytes() + base_log_.ApproxChunkBytes() +
         taxonomy_.ApproxSharedBytes() +
         (instances_.ApproxFrozenEntries() +
          referenced_by_.ApproxFrozenEntries() +
          fills_index_.ApproxFrozenEntries()) *
             sizeof(std::pair<IndId, std::set<IndId>>);
}

Result<RoleId> KnowledgeBase::DefineRole(std::string_view name,
                                         bool attribute) {
  return vocab_->DefineRole(name, attribute);
}

Result<ConceptId> KnowledgeBase::DefineConcept(std::string_view name,
                                               DescPtr definition) {
  if (IsReservedConceptName(name)) {
    return Status::InvalidArgument(
        StrCat(name, " is a reserved built-in name"));
  }
  Symbol sym = vocab_->symbols().Intern(name);
  if (vocab_->HasConcept(sym)) {
    return Status::AlreadyExists(StrCat("concept ", name, " already defined"));
  }
  CLASSIC_ASSIGN_OR_RETURN(NormalFormPtr nf,
                           normalizer_->NormalizeConcept(definition));
  CLASSIC_ASSIGN_OR_RETURN(ConceptId cid,
                           vocab_->DefineConcept(sym, definition, nf));
  CLASSIC_ASSIGN_OR_RETURN(NodeId node, taxonomy_.Insert(cid));

  // A new named concept may recognize existing individuals. Any instance
  // of the new node must already be an instance of every parent node
  // (parents subsume it), so the intersection of the parents' extensions
  // is a sound and complete seed set; only a root concept (no named
  // parents) can match anyone, including host individuals (enumerated /
  // TEST / built-in definitions).
  std::vector<IndId> seeds;
  if (taxonomy_.Synonyms(node).size() > 1) {
    // Joined an existing node as a synonym: its extension is already
    // maintained; nothing to reclassify.
    return cid;
  }
  const auto& parents = taxonomy_.Parents(node);
  if (parents.empty()) {
    for (IndId i = 0; i < vocab_->num_individuals(); ++i) seeds.push_back(i);
  } else {
    NodeId smallest = *parents.begin();
    for (NodeId p : parents) {
      if (Instances(p).size() < Instances(smallest).size()) smallest = p;
    }
    for (IndId i : Instances(smallest)) {
      bool in_all = true;
      for (NodeId p : parents) {
        if (p == smallest) continue;
        if (Instances(p).count(i) == 0) {
          in_all = false;
          break;
        }
      }
      if (in_all) seeds.push_back(i);
    }
  }
  if (!seeds.empty()) {
    Status st = Propagate(seeds);
    if (!st.ok()) {
      // Schema definition cannot make the ABox inconsistent (it only adds
      // vocabulary); a failure here is an engine bug.
      return Status::Internal(
          StrCat("reclassification after define-concept failed: ",
                 st.message()));
    }
  }
  return cid;
}

Result<size_t> KnowledgeBase::AssertRule(std::string_view antecedent_name,
                                         DescPtr consequent) {
  Symbol sym = vocab_->symbols().Lookup(antecedent_name);
  if (sym == kNoSymbol) {
    return Status::NotFound(
        StrCat("unknown antecedent concept: ", antecedent_name));
  }
  CLASSIC_ASSIGN_OR_RETURN(ConceptId cid, vocab_->FindConcept(sym));
  CLASSIC_ASSIGN_OR_RETURN(NodeId node, taxonomy_.NodeOf(cid));
  CLASSIC_ASSIGN_OR_RETURN(NormalFormPtr nf,
                           normalizer_->NormalizeConcept(consequent));
  if (nf->incoherent()) {
    return Status::InvalidArgument(
        "rule consequent is incoherent; the rule could never fire safely");
  }
  size_t idx = rules_.size();
  rules_.push_back({node, cid, consequent, nf});
  rules_on_node_.Mutable(node).push_back(idx);
  // Latch the parallelism gate BEFORE firing: the immediate propagation
  // below must already run serially if this consequent mentions
  // individuals (see kb/propagate.h on why such rules defeat the
  // component partition).
  const bool gated_before = rules_mention_inds_;
  if (MentionsIndividuals(*nf)) rules_mention_inds_ = true;

  // Fire immediately for current instances (complete propagation).
  std::vector<IndId> seeds(Instances(node).begin(), Instances(node).end());
  if (!seeds.empty()) {
    Status st = Propagate(seeds);
    if (!st.ok()) {
      rules_on_node_.Mutable(node).pop_back();
      rules_.pop_back();
      rules_mention_inds_ = gated_before;
      return st.WithContext("rule rejected: firing it contradicts the DB");
    }
  }
  return idx;
}

std::vector<size_t> KnowledgeBase::RulesOnNode(NodeId node) const {
  const std::vector<size_t>* on_node = rules_on_node_.Find(node);
  if (on_node == nullptr) return {};
  return *on_node;
}

Result<IndId> KnowledgeBase::CreateIndividual(std::string_view name) {
  CLASSIC_ASSIGN_OR_RETURN(IndId ind, vocab_->CreateIndividual(name));
  StateRef(ind);  // materialize with intrinsic knowledge
  // Even a fresh individual may be recognized (e.g. by concepts with no
  // requirements beyond CLASSIC-THING).
  Status st = Propagate({ind});
  if (!st.ok()) return Status::Internal(st.message());
  return ind;
}

Result<IndId> KnowledgeBase::CreateIndividual(std::string_view name,
                                              DescPtr initial) {
  CLASSIC_ASSIGN_OR_RETURN(IndId ind, CreateIndividual(name));
  CLASSIC_RETURN_NOT_OK(AssertInd(ind, std::move(initial)));
  return ind;
}

Status KnowledgeBase::AssertInd(IndId ind, DescPtr expr) {
  if (ind >= vocab_->num_individuals()) {
    return Status::NotFound(StrCat("no such individual id: ", ind));
  }
  if (!IsClassicIndividual(ind)) {
    return Status::InvalidArgument(
        StrCat("host individual ", vocab_->IndividualName(ind),
               " cannot be described (host individuals have no roles)"));
  }
  Propagator prop(this, propagation_pool_);
  Status st = ApplyIndividualExpr(&prop, ind, expr);
  if (!st.ok()) {
    prop.RollbackAll();
    return st;
  }
  MutableState(ind).asserted.push_back(expr);
  base_log_.push_back({ind, std::move(expr)});
  return Status::OK();
}

Status KnowledgeBase::AssertIndBatch(
    const std::vector<std::pair<IndId, DescPtr>>& batch) {
  for (const auto& [ind, expr] : batch) {
    if (ind >= vocab_->num_individuals()) {
      return Status::NotFound(StrCat("no such individual id: ", ind));
    }
    if (!IsClassicIndividual(ind)) {
      return Status::InvalidArgument(
          StrCat("host individual ", vocab_->IndividualName(ind),
                 " cannot be described (host individuals have no roles)"));
    }
  }

  // Normalize every descriptive part up front, so the whole batch
  // settles in one (partitionable) wavefront. CLOSE conjuncts are
  // peeled off per entry and applied in batch order afterwards.
  struct Entry {
    IndId ind;
    NormalFormPtr nf;  // null when the expression was pure CLOSE
    std::vector<Symbol> close_roles;
  };
  Propagator prop(this, propagation_pool_);
  const IndId inds_before = static_cast<IndId>(vocab_->num_individuals());
  std::vector<Entry> entries;
  std::vector<std::pair<IndId, NormalFormPtr>> merges;
  entries.reserve(batch.size());
  for (const auto& [ind, expr] : batch) {
    Entry e;
    e.ind = ind;
    std::vector<DescPtr> rest;
    SplitCloseConjuncts(expr, &rest, &e.close_roles);
    if (!rest.empty()) {
      DescPtr descriptive = rest.size() == 1 ? rest[0] : Description::And(rest);
      CLASSIC_ASSIGN_OR_RETURN(
          e.nf, normalizer_->NormalizeIndividualExpr(descriptive));
      if (e.nf->incoherent()) {
        ++stats_.rejected_updates;
        return Status::Inconsistent(
            StrCat("asserted expression for ", vocab_->IndividualName(ind),
                   " is itself incoherent (",
                   IncoherenceKindName(e.nf->incoherence_kind()),
                   "): ", e.nf->incoherence_reason()));
      }
      merges.emplace_back(ind, e.nf);
    }
    entries.push_back(std::move(e));
  }
  // Host values interned by normalization need classification.
  std::vector<IndId> seeds;
  for (IndId i = inds_before; i < vocab_->num_individuals(); ++i) {
    seeds.push_back(i);
  }

  Status st = prop.Run(seeds, merges);
  for (const Entry& e : entries) {
    if (!st.ok()) break;
    for (Symbol role_name : e.close_roles) {
      Result<RoleId> role = vocab_->FindRole(role_name);
      if (!role.ok()) {
        st = role.status();
        break;
      }
      NormalForm close_nf;
      RoleRestriction* rr = close_nf.MutableRole(*role, *vocab_);
      rr->closed = true;
      rr->fillers = StateRef(e.ind).derived->role(*role).fillers;
      close_nf.Tighten(*vocab_);
      st = prop.Run({}, {{e.ind, normalizer_->Freeze(std::move(close_nf))}});
      if (!st.ok()) break;
    }
  }
  if (!st.ok()) {
    prop.RollbackAll();
    return st;
  }
  for (const auto& [ind, expr] : batch) {
    MutableState(ind).asserted.push_back(expr);
    base_log_.push_back({ind, expr});
  }
  return Status::OK();
}

Status KnowledgeBase::ApplyIndividualExpr(Propagator* prop, IndId ind,
                                          const DescPtr& expr) {
  std::vector<DescPtr> rest;
  std::vector<Symbol> close_roles;
  SplitCloseConjuncts(expr, &rest, &close_roles);

  const IndId inds_before = static_cast<IndId>(vocab_->num_individuals());

  if (!rest.empty()) {
    DescPtr descriptive =
        rest.size() == 1 ? rest[0] : Description::And(rest);
    CLASSIC_ASSIGN_OR_RETURN(
        NormalFormPtr nf, normalizer_->NormalizeIndividualExpr(descriptive));
    if (nf->incoherent()) {
      ++stats_.rejected_updates;
      return Status::Inconsistent(
          StrCat("asserted expression is itself incoherent (",
                 IncoherenceKindName(nf->incoherence_kind()),
                 "): ", nf->incoherence_reason()));
    }
    // Normalization may have interned fresh host values; classify them
    // (as extra seeds) so the instance indexes stay complete, and let
    // the descriptive part (and its deductions) settle before any
    // closure fixes the extension.
    std::vector<IndId> seeds;
    for (IndId i = inds_before; i < vocab_->num_individuals(); ++i) {
      seeds.push_back(i);
    }
    CLASSIC_RETURN_NOT_OK(prop->Run(seeds, {{ind, nf}}));
  }

  for (Symbol role_name : close_roles) {
    CLASSIC_ASSIGN_OR_RETURN(RoleId role, vocab_->FindRole(role_name));
    NormalForm close_nf;
    RoleRestriction* rr = close_nf.MutableRole(role, *vocab_);
    rr->closed = true;
    rr->fillers = StateRef(ind).derived->role(role).fillers;
    close_nf.Tighten(*vocab_);
    CLASSIC_RETURN_NOT_OK(
        prop->Run({}, {{ind, normalizer_->Freeze(std::move(close_nf))}}));
  }
  return Status::OK();
}

Status KnowledgeBase::RetractInd(IndId ind, const DescPtr& expr) {
  if (ind >= states_.size() || !IsClassicIndividual(ind)) {
    return Status::NotFound("no assertions recorded for this individual");
  }
  IndividualState& st = MutableState(ind);
  const std::string needle = expr->ToString(vocab_->symbols());
  auto it = std::find_if(st.asserted.begin(), st.asserted.end(),
                         [&](const DescPtr& d) {
                           return d->ToString(vocab_->symbols()) == needle;
                         });
  if (it == st.asserted.end()) {
    return Status::NotFound(
        StrCat("expression was not asserted of ", vocab_->IndividualName(ind),
               ": ", needle));
  }
  st.asserted.erase(it);
  // Erase the FIRST matching log entry only: re-asserting the same
  // expression twice yields two entries, and retraction removes one
  // (multiset semantics).
  for (size_t i = 0; i < base_log_.size(); ++i) {
    const auto& entry = base_log_[i];
    if (entry.first == ind &&
        entry.second->ToString(vocab_->symbols()) == needle) {
      base_log_.EraseAt(i);
      break;
    }
  }
  return RederiveAll();
}

Status KnowledgeBase::RederiveAll() {
  // Keep base assertions; wipe all derivations, then replay the base log
  // in its original global order (the interleaving matters for CLOSE,
  // whose meaning is "the fillers known at that moment").
  for (size_t i = 0; i < states_.size(); ++i) {
    IndividualState& st = states_.Mutable(i);
    std::vector<DescPtr> asserted = std::move(st.asserted);
    st = IndividualState{};
    st.asserted = std::move(asserted);
    st.derived = IntrinsicForm(static_cast<IndId>(i));
  }
  instances_.Clear();
  referenced_by_.Clear();
  fills_index_.Clear();

  Propagator prop(this, propagation_pool_);
  // Individuals with no assertions still need realization.
  std::vector<IndId> seeds;
  for (size_t i = 0; i < states_.size(); ++i) {
    if (IsClassicIndividual(static_cast<IndId>(i))) {
      seeds.push_back(static_cast<IndId>(i));
    }
  }
  Status st = prop.Run(seeds, {});
  for (size_t i = 0; i < base_log_.size(); ++i) {
    if (!st.ok()) break;
    // Copy the entry: replay re-enters propagation, which may path-copy
    // the chunk under a reference into it.
    const auto entry = base_log_[i];
    st = ApplyIndividualExpr(&prop, entry.first, entry.second);
  }
  if (!st.ok()) {
    return Status::Internal(
        StrCat("re-derivation became inconsistent: ", st.message()));
  }
  return Status::OK();
}

const IndividualState& KnowledgeBase::state(IndId ind) const {
  return StateRef(ind);
}

bool KnowledgeBase::IsClassicIndividual(IndId ind) const {
  return vocab_->individual(ind).kind == IndKind::kClassic;
}

const std::set<IndId>& KnowledgeBase::Instances(NodeId node) const {
  const std::set<IndId>* inds = instances_.Find(node);
  if (inds == nullptr) return EmptyIndSet();
  return *inds;
}

const std::set<IndId>& KnowledgeBase::Referencers(IndId ind) const {
  const std::set<IndId>* refs = referenced_by_.Find(ind);
  if (refs == nullptr) return EmptyIndSet();
  return *refs;
}

std::vector<IndId> KnowledgeBase::AllClassicIndividuals() const {
  std::vector<IndId> out;
  const IndId limit = num_visible_individuals();
  for (IndId i = 0; i < limit; ++i) {
    if (IsClassicIndividual(i)) out.push_back(i);
  }
  return out;
}

NormalFormPtr KnowledgeBase::IntrinsicForm(IndId ind) const {
  NormalForm nf;
  for (AtomId a : vocab_->IntrinsicAtoms(ind)) nf.AddAtom(a, *vocab_);
  // Freeze through the normalizer so intrinsic states share the store's
  // canonical objects (pointer fast paths, valid memo ids).
  return normalizer_->Freeze(std::move(nf));
}

const IndividualState& KnowledgeBase::StateRef(IndId ind) const {
  // Fast path: already materialized into the chunked store before this
  // epoch froze (or, on the master, at any earlier point — the master is
  // single-writer, so its size only moves under external sync).
  if (ind < states_.size()) return states_[ind];
  std::lock_guard<std::mutex> lock(states_mutex_);
  if (frozen_) {
    // Frozen epochs never write the shared chunks (they may be chunk-
    // shared with other epochs and with the live master). Individuals
    // interned after the freeze — host values materialized by query
    // normalization — get their intrinsic state in a snapshot-local side
    // table with stable addresses, guarded by states_mutex_.
    const size_t base = frozen_states_size_;
    while (base + state_overlay_.size() <= ind) {
      IndId id = static_cast<IndId>(base + state_overlay_.size());
      IndividualState st;
      st.derived = IntrinsicForm(id);
      state_overlay_.push_back(std::move(st));
    }
    return state_overlay_[ind - base];
  }
  while (states_.size() <= ind) {
    IndId id = static_cast<IndId>(states_.size());
    IndividualState st;
    st.derived = IntrinsicForm(id);
    states_.push_back(std::move(st));
  }
  return states_[ind];
}

IndividualState& KnowledgeBase::MutableState(IndId ind) {
  StateRef(ind);  // materialize first
  if (frozen_ && ind >= frozen_states_size_) {
    return state_overlay_[ind - frozen_states_size_];
  }
  return states_.Mutable(ind);
}

std::optional<IndId> KnowledgeBase::ResolvePath(IndId start,
                                                const RolePath& path) const {
  IndId cur = start;
  for (RoleId role : path) {
    if (!IsClassicIndividual(cur)) return std::nullopt;
    const RoleRestriction& rr = StateRef(cur).derived->role(role);
    if (rr.fillers.size() != 1) return std::nullopt;
    cur = *rr.fillers.begin();
  }
  return cur;
}

bool KnowledgeBase::Satisfies(IndId ind, const NormalForm& concept_nf) const {
  std::set<std::pair<IndId, const NormalForm*>> guard;
  return SatisfiesImpl(ind, concept_nf, &guard);
}

bool KnowledgeBase::SatisfiesImpl(
    IndId ind, const NormalForm& nf,
    std::set<std::pair<IndId, const NormalForm*>>* guard) const {
  ++stats_.satisfies_checks;
  CLASSIC_OBS_COUNT(kInstanceChecks);
  if (nf.incoherent()) return false;
  if (nf.IsThing()) return true;
  auto key = std::make_pair(ind, &nf);
  if (!guard->insert(key).second) {
    // Cycle through the filler graph: only finitely derivable knowledge
    // counts, so an in-progress goal is not yet proven.
    return false;
  }
  struct GuardPop {
    std::set<std::pair<IndId, const NormalForm*>>* g;
    std::pair<IndId, const NormalForm*> k;
    ~GuardPop() { g->erase(k); }
  } pop{guard, key};

  const NormalForm& derived = *StateRef(ind).derived;

  if (!std::includes(derived.atoms().begin(), derived.atoms().end(),
                     nf.atoms().begin(), nf.atoms().end())) {
    return false;
  }
  if (nf.enumeration() && nf.enumeration()->count(ind) == 0) return false;

  for (Symbol test : nf.tests()) {
    if (derived.tests().count(test) > 0) continue;
    auto fn = vocab_->FindTest(test);
    if (!fn.ok()) return false;
    TestArg arg;
    arg.ind = ind;
    const IndInfo& info = vocab_->individual(ind);
    arg.host = info.host ? &*info.host : nullptr;
    if (!(**fn)(arg)) return false;
  }

  for (const auto& [role, rc] : nf.roles()) {
    const RoleRestriction& ri = derived.role(role);
    // Attributes are single-valued by declaration even when the derived
    // record is absent or unclamped.
    uint32_t ri_at_most = ri.at_most;
    if (vocab_->role(role).attribute) {
      ri_at_most = std::min<uint32_t>(ri_at_most, 1);
    }
    if (ri.at_least < rc.at_least) return false;
    if (ri_at_most > rc.at_most) return false;
    if (rc.closed && !ri.closed) return false;
    if (!std::includes(ri.fillers.begin(), ri.fillers.end(),
                       rc.fillers.begin(), rc.fillers.end())) {
      return false;
    }
    if (rc.value_restriction && !rc.value_restriction->IsThing() &&
        ri.at_most > 0) {
      const NormalForm& want = *rc.value_restriction;
      bool ok = false;
      if (ri.value_restriction &&
          Subsumes(want, *ri.value_restriction,
                   taxonomy_.subsumption_index())) {
        ok = true;
      } else if (ri.closed) {
        ok = true;
        for (IndId f : ri.fillers) {
          if (!SatisfiesImpl(f, want, guard)) {
            ok = false;
            break;
          }
        }
      }
      if (!ok) return false;
    }
  }

  for (const auto& [p, q] : nf.coref().pairs()) {
    if (derived.coref().Entails(p, q)) continue;
    // Extensional evidence: both chains resolve to the same individual.
    std::optional<IndId> vp = ResolvePath(ind, p);
    std::optional<IndId> vq = ResolvePath(ind, q);
    if (!vp || !vq || *vp != *vq) return false;
  }

  return true;
}

Status KnowledgeBase::Propagate(const std::vector<IndId>& seeds) {
  Propagator prop(this, propagation_pool_);
  Status st = prop.Run(seeds, {});
  if (!st.ok()) prop.RollbackAll();
  return st;
}

Status KnowledgeBase::Repropagate() { return Propagate(AllClassicIndividuals()); }

std::string KnowledgeBase::CanonicalDerivedState() const {
  // Everything rendered here is a deterministic function of stable ids:
  // normal forms print id-sorted atom/filler/role sets, instance sets
  // are ordered std::set<IndId>, and propagation interns no new ids
  // (Meet/Tighten only combine existing ones) — so two runs that derive
  // the same fixed point print the same bytes.
  std::string out;
  const IndId limit = num_visible_individuals();
  for (IndId i = 0; i < limit; ++i) {
    const IndividualState& st = StateRef(i);
    out += vocab_->IndividualName(i);
    out += " := ";
    out += st.derived->ToString(*vocab_);
    // ToString re-derives CLOSE from bounds where possible; pin the
    // closed flags explicitly so closure state is always compared.
    for (const auto& [role, rr] : st.derived->roles()) {
      if (rr.closed) {
        out += " [closed ";
        out += vocab_->symbols().Name(vocab_->role(role).name);
        out += "]";
      }
    }
    out += " msc={";
    bool first = true;
    for (NodeId node : st.msc) {
      for (ConceptId cid : taxonomy_.Synonyms(node)) {
        if (!first) out += ",";
        first = false;
        out += vocab_->symbols().Name(vocab_->concept_info(cid).name);
      }
    }
    out += "} rules={";
    first = true;
    for (size_t idx : st.applied_rules) {
      if (!first) out += ",";
      first = false;
      out += std::to_string(idx);
    }
    out += "}\n";
  }
  for (NodeId node = 0; node < taxonomy_.num_nodes(); ++node) {
    out += "node ";
    out += std::to_string(node);
    bool first = true;
    out += " [";
    for (ConceptId cid : taxonomy_.Synonyms(node)) {
      if (!first) out += "/";
      first = false;
      out += vocab_->symbols().Name(vocab_->concept_info(cid).name);
    }
    out += "] instances={";
    first = true;
    for (IndId ind : Instances(node)) {
      if (ind >= limit) continue;
      if (!first) out += ",";
      first = false;
      out += vocab_->IndividualName(ind);
    }
    out += "}\n";
  }
  return out;
}

}  // namespace classic
