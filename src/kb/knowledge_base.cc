#include "kb/knowledge_base.h"

#include <algorithm>
#include <deque>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "subsume/subsume.h"
#include "util/string_util.h"

namespace classic {

namespace {

const std::set<IndId>& EmptyIndSet() {
  static const std::set<IndId> kEmpty;
  return kEmpty;
}

bool IsReservedConceptName(std::string_view name) {
  static const char* kReserved[] = {"THING",  "CLASSIC-THING", "HOST-THING",
                                    "INTEGER", "REAL",         "NUMBER",
                                    "STRING",  "BOOLEAN",      "NOTHING"};
  for (const char* r : kReserved) {
    if (name == r) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// The propagation engine. One engine instance runs one update to a fixed
// point, journaling every touched structure so a detected inconsistency
// rolls the whole update back (assert-ind is atomic).
// ---------------------------------------------------------------------------

class PropagationEngine {
 public:
  explicit PropagationEngine(KnowledgeBase* kb) : kb_(kb) {}

  void Enqueue(IndId ind) {
    if (queued_.insert(ind).second) worklist_.push_back(ind);
  }

  /// Merges extra knowledge into an individual's derived state.
  Status MergeInto(IndId ind, const NormalForm& nf) {
    IndividualState& st = Touch(ind);
    NormalFormPtr merged = kb_->normalizer_->Meet(*st.derived, nf);
    if (merged->incoherent()) {
      return Status::Inconsistent(
          StrCat("update would make ", kb_->vocab_->IndividualName(ind),
                 " incoherent (",
                 IncoherenceKindName(merged->incoherence_kind()),
                 "): ", merged->incoherence_reason()));
    }
    // Interning makes pointer identity a complete no-change test: both
    // sides come from the store, so structural equality implies the same
    // canonical object. The structural comparison remains as fallback for
    // non-interned configurations.
    const bool unchanged =
        merged == st.derived ||
        (merged->interned_id() != kNoNfId &&
         st.derived->interned_id() != kNoNfId
             ? merged->interned_id() == st.derived->interned_id()
             : merged->Equals(*st.derived));
    if (!unchanged) {
      st.derived = merged;
      Enqueue(ind);
      // Whoever references this individual may now recognize more.
      if (const std::set<IndId>* refs = kb_->referenced_by_.Find(ind)) {
        for (IndId host : *refs) Enqueue(host);
      }
    }
    return Status::OK();
  }

  Status Run() {
    while (!worklist_.empty()) {
      IndId ind = worklist_.front();
      worklist_.pop_front();
      queued_.erase(ind);
      CLASSIC_RETURN_NOT_OK(Step(ind));
    }
    return Status::OK();
  }

  void Rollback() {
    for (auto& [ind, saved] : undo_) {
      kb_->MutableState(ind) = std::move(saved);
    }
    for (const auto& [node, ind] : instance_inserts_) {
      kb_->instances_.Mutable(node).erase(ind);
    }
    for (const auto& [filler, host] : refs_added_) {
      kb_->referenced_by_.Mutable(filler).erase(host);
    }
    ++kb_->stats_.rejected_updates;
  }

 private:
  IndividualState& Touch(IndId ind) {
    IndividualState& st = kb_->MutableState(ind);
    undo_.try_emplace(ind, st);
    return st;
  }

  Status Step(IndId ind) {
    ++kb_->stats_.propagation_steps;
    CLASSIC_OBS_COUNT(kPropagationSteps);
    if (!kb_->IsClassicIndividual(ind)) {
      // Host individuals are immutable values: they are classified (they
      // can belong to enumerated / TEST / built-in concepts) but carry no
      // roles and never gain derived state, so rules do not apply.
      Realize(ind);
      return Status::OK();
    }
    CLASSIC_RETURN_NOT_OK(PropagateToFillers(ind));
    CLASSIC_RETURN_NOT_OK(PropagateCoref(ind));
    Realize(ind);
    CLASSIC_RETURN_NOT_OK(FireRules(ind));
    return Status::OK();
  }

  /// (ALL r C) applied to every known r-filler; host fillers are checked
  /// (they carry complete intrinsic knowledge), CLASSIC fillers gain C.
  Status PropagateToFillers(IndId ind) {
    NormalFormPtr derived = kb_->StateRef(ind).derived;  // snapshot
    for (const auto& [role, rr] : derived->roles()) {
      for (IndId filler : rr.fillers) {
        if (kb_->referenced_by_.Mutable(filler).insert(ind).second) {
          refs_added_.emplace_back(filler, ind);
        }
        if (!rr.value_restriction || rr.value_restriction->IsThing()) {
          continue;
        }
        const NormalForm& vr = *rr.value_restriction;
        if (kb_->IsClassicIndividual(filler)) {
          Status st = MergeInto(filler, vr);
          if (!st.ok()) {
            return st.WithContext(
                StrCat("propagating (ALL ",
                       kb_->vocab_->symbols().Name(kb_->vocab_->role(role).name),
                       " ...) from ", kb_->vocab_->IndividualName(ind)));
          }
        } else if (!kb_->Satisfies(filler, vr)) {
          return Status::Inconsistent(
              StrCat("host filler ", kb_->vocab_->IndividualName(filler),
                     " of role ",
                     kb_->vocab_->symbols().Name(kb_->vocab_->role(role).name),
                     " on ", kb_->vocab_->IndividualName(ind),
                     " violates the value restriction"));
        }
      }
    }
    return Status::OK();
  }

  /// SAME-AS chains: when one path of a co-reference class resolves to a
  /// value, the value is propagated into the other paths (deriving new
  /// fillers); two distinct resolved values are a contradiction under the
  /// unique-name assumption.
  Status PropagateCoref(IndId ind) {
    NormalFormPtr derived = kb_->StateRef(ind).derived;
    if (derived->coref().empty()) return Status::OK();
    for (const auto& cls : derived->coref().CanonicalClasses()) {
      std::optional<IndId> value;
      for (const auto& path : cls) {
        std::optional<IndId> v = kb_->ResolvePath(ind, path);
        if (!v) continue;
        if (value && *value != *v) {
          return Status::Inconsistent(
              StrCat("co-reference conflict on ",
                     kb_->vocab_->IndividualName(ind), ": paths resolve to ",
                     kb_->vocab_->IndividualName(*value), " and ",
                     kb_->vocab_->IndividualName(*v)));
        }
        value = v;
      }
      if (!value) continue;
      // Fill the last step of every path whose prefix resolves.
      for (const auto& path : cls) {
        RolePath prefix(path.begin(), path.end() - 1);
        std::optional<IndId> holder = kb_->ResolvePath(ind, prefix);
        if (!holder) continue;
        const RoleRestriction& rr =
            kb_->StateRef(*holder).derived->role(path.back());
        if (rr.fillers.count(*value) > 0) continue;
        NormalForm fill;
        fill.MutableRole(path.back(), *kb_->vocab_)->fillers.insert(*value);
        fill.Tighten(*kb_->vocab_);
        Status st = MergeInto(*holder, fill);
        if (!st.ok()) return st.WithContext("propagating SAME-AS filler");
      }
    }
    return Status::OK();
  }

  /// Recomputes the individual's position in the taxonomy (recognition):
  /// top-down search, since the set of satisfied nodes is upward-closed.
  void Realize(IndId ind) {
    ++kb_->stats_.realizations;
    CLASSIC_OBS_COUNT(kRealizations);
    obs::TraceSpan span("realize");
    const Taxonomy& tax = kb_->taxonomy_;
    const std::set<NodeId>& already = kb_->StateRef(ind).subsumer_nodes;
    std::set<NodeId> subs;
    std::deque<NodeId> queue(tax.roots().begin(), tax.roots().end());
    std::set<NodeId> seen(tax.roots().begin(), tax.roots().end());
    while (!queue.empty()) {
      NodeId node = queue.front();
      queue.pop_front();
      // Recognition is monotone ("every individual can move into a class
      // at most once"), so previously recognized nodes need no re-test.
      if (already.count(node) == 0 &&
          !kb_->Satisfies(ind, *tax.NodeForm(node))) {
        continue;
      }
      subs.insert(node);
      for (NodeId child : tax.Children(node)) {
        if (seen.insert(child).second) queue.push_back(child);
      }
    }
    const IndividualState& st = kb_->StateRef(ind);
    // Monotonicity guard: recognition never retracts (paper Section 5).
    subs.insert(st.subsumer_nodes.begin(), st.subsumer_nodes.end());
    if (subs == st.subsumer_nodes) return;
    // Touch may path-copy the record's chunk; `st`/`already` stay valid
    // (they alias the shared pre-copy chunk) but are stale from here on.
    IndividualState& stw = Touch(ind);
    for (NodeId node : subs) {
      if (stw.subsumer_nodes.count(node) == 0) {
        if (kb_->instances_.Mutable(node).insert(ind).second) {
          instance_inserts_.emplace_back(node, ind);
        }
      }
    }
    stw.subsumer_nodes = std::move(subs);
    stw.msc.clear();
    for (NodeId node : stw.subsumer_nodes) {
      bool most_specific = true;
      for (NodeId child : tax.Children(node)) {
        if (stw.subsumer_nodes.count(child) > 0) {
          most_specific = false;
          break;
        }
      }
      if (most_specific) stw.msc.insert(node);
    }
  }

  /// Fires pending rules for every node the individual is recognized
  /// under; each rule fires at most once per individual.
  Status FireRules(IndId ind) {
    // Snapshot: rule application can change subsumer_nodes (via Enqueue /
    // later Realize), which re-runs Step anyway.
    std::vector<size_t> pending;
    {
      const IndividualState& st = kb_->StateRef(ind);
      for (NodeId node : st.subsumer_nodes) {
        const std::vector<size_t>* on_node = kb_->rules_on_node_.Find(node);
        if (on_node == nullptr) continue;
        for (size_t idx : *on_node) {
          if (st.applied_rules.count(idx) == 0) pending.push_back(idx);
        }
      }
    }
    for (size_t idx : pending) {
      Touch(ind).applied_rules.insert(idx);
      ++kb_->stats_.rule_firings;
      CLASSIC_OBS_COUNT(kRuleFirings);
      Status st = MergeInto(ind, *kb_->rules_[idx].consequent);
      if (!st.ok()) {
        return st.WithContext(StrCat(
            "firing rule on ",
            kb_->vocab_->symbols().Name(
                kb_->vocab_->concept_info(kb_->rules_[idx].antecedent_concept)
                    .name)));
      }
    }
    return Status::OK();
  }

  KnowledgeBase* kb_;
  std::deque<IndId> worklist_;
  std::set<IndId> queued_;
  std::map<IndId, IndividualState> undo_;
  std::vector<std::pair<NodeId, IndId>> instance_inserts_;
  std::vector<std::pair<IndId, IndId>> refs_added_;
};

// ---------------------------------------------------------------------------
// KnowledgeBase
// ---------------------------------------------------------------------------

KnowledgeBase::KnowledgeBase()
    : vocab_(std::make_shared<Vocabulary>()),
      normalizer_(std::make_shared<Normalizer>(vocab_.get())),
      taxonomy_(vocab_.get()) {}

// The copy-on-write epoch copy: vocabulary, normalizer and subsumption
// memo are shared outright (they are internally synchronized interning
// caches whose growth never changes database meaning); the chunked
// stores share chunk directories; the delta maps freeze their overlays
// and share every layer. Cost is O(accumulated delta), independent of
// database size.
KnowledgeBase::KnowledgeBase(const KnowledgeBase& other)
    : vocab_(other.vocab_),
      normalizer_(other.normalizer_),
      taxonomy_(other.taxonomy_, other.vocab_.get()),
      states_(other.states_),
      visible_ind_limit_(other.visible_ind_limit_),
      base_log_(other.base_log_),
      instances_(other.instances_.Fork()),
      rules_on_node_(other.rules_on_node_.Fork()),
      rules_(other.rules_),
      referenced_by_(other.referenced_by_.Fork()),
      stats_(other.stats_) {}

std::unique_ptr<KnowledgeBase> KnowledgeBase::Clone() const {
  return std::unique_ptr<KnowledgeBase>(new KnowledgeBase(*this));
}

size_t KnowledgeBase::TakeCowCopyCount() {
  return states_.TakeChunkCopies() + base_log_.TakeChunkCopies() +
         instances_.TakeValueCopies() + referenced_by_.TakeValueCopies() +
         rules_on_node_.TakeValueCopies() + taxonomy_.TakeCowCopies();
}

size_t KnowledgeBase::ApproxSharedCowBytes() const {
  return states_.ApproxChunkBytes() + base_log_.ApproxChunkBytes() +
         taxonomy_.ApproxSharedBytes() +
         (instances_.ApproxFrozenEntries() +
          referenced_by_.ApproxFrozenEntries()) *
             sizeof(std::pair<IndId, std::set<IndId>>);
}

Result<RoleId> KnowledgeBase::DefineRole(std::string_view name,
                                         bool attribute) {
  return vocab_->DefineRole(name, attribute);
}

Result<ConceptId> KnowledgeBase::DefineConcept(std::string_view name,
                                               DescPtr definition) {
  if (IsReservedConceptName(name)) {
    return Status::InvalidArgument(
        StrCat(name, " is a reserved built-in name"));
  }
  Symbol sym = vocab_->symbols().Intern(name);
  if (vocab_->HasConcept(sym)) {
    return Status::AlreadyExists(StrCat("concept ", name, " already defined"));
  }
  CLASSIC_ASSIGN_OR_RETURN(NormalFormPtr nf,
                           normalizer_->NormalizeConcept(definition));
  CLASSIC_ASSIGN_OR_RETURN(ConceptId cid,
                           vocab_->DefineConcept(sym, definition, nf));
  CLASSIC_ASSIGN_OR_RETURN(NodeId node, taxonomy_.Insert(cid));

  // A new named concept may recognize existing individuals. Any instance
  // of the new node must already be an instance of every parent node
  // (parents subsume it), so the intersection of the parents' extensions
  // is a sound and complete seed set; only a root concept (no named
  // parents) can match anyone, including host individuals (enumerated /
  // TEST / built-in definitions).
  std::vector<IndId> seeds;
  if (taxonomy_.Synonyms(node).size() > 1) {
    // Joined an existing node as a synonym: its extension is already
    // maintained; nothing to reclassify.
    return cid;
  }
  const auto& parents = taxonomy_.Parents(node);
  if (parents.empty()) {
    for (IndId i = 0; i < vocab_->num_individuals(); ++i) seeds.push_back(i);
  } else {
    NodeId smallest = *parents.begin();
    for (NodeId p : parents) {
      if (Instances(p).size() < Instances(smallest).size()) smallest = p;
    }
    for (IndId i : Instances(smallest)) {
      bool in_all = true;
      for (NodeId p : parents) {
        if (p == smallest) continue;
        if (Instances(p).count(i) == 0) {
          in_all = false;
          break;
        }
      }
      if (in_all) seeds.push_back(i);
    }
  }
  if (!seeds.empty()) {
    Status st = Propagate(seeds);
    if (!st.ok()) {
      // Schema definition cannot make the ABox inconsistent (it only adds
      // vocabulary); a failure here is an engine bug.
      return Status::Internal(
          StrCat("reclassification after define-concept failed: ",
                 st.message()));
    }
  }
  return cid;
}

Result<size_t> KnowledgeBase::AssertRule(std::string_view antecedent_name,
                                         DescPtr consequent) {
  Symbol sym = vocab_->symbols().Lookup(antecedent_name);
  if (sym == kNoSymbol) {
    return Status::NotFound(
        StrCat("unknown antecedent concept: ", antecedent_name));
  }
  CLASSIC_ASSIGN_OR_RETURN(ConceptId cid, vocab_->FindConcept(sym));
  CLASSIC_ASSIGN_OR_RETURN(NodeId node, taxonomy_.NodeOf(cid));
  CLASSIC_ASSIGN_OR_RETURN(NormalFormPtr nf,
                           normalizer_->NormalizeConcept(consequent));
  if (nf->incoherent()) {
    return Status::InvalidArgument(
        "rule consequent is incoherent; the rule could never fire safely");
  }
  size_t idx = rules_.size();
  rules_.push_back({node, cid, consequent, nf});
  rules_on_node_.Mutable(node).push_back(idx);

  // Fire immediately for current instances (complete propagation).
  std::vector<IndId> seeds(Instances(node).begin(), Instances(node).end());
  if (!seeds.empty()) {
    Status st = Propagate(seeds);
    if (!st.ok()) {
      rules_on_node_.Mutable(node).pop_back();
      rules_.pop_back();
      return st.WithContext("rule rejected: firing it contradicts the DB");
    }
  }
  return idx;
}

std::vector<size_t> KnowledgeBase::RulesOnNode(NodeId node) const {
  const std::vector<size_t>* on_node = rules_on_node_.Find(node);
  if (on_node == nullptr) return {};
  return *on_node;
}

Result<IndId> KnowledgeBase::CreateIndividual(std::string_view name) {
  CLASSIC_ASSIGN_OR_RETURN(IndId ind, vocab_->CreateIndividual(name));
  StateRef(ind);  // materialize with intrinsic knowledge
  // Even a fresh individual may be recognized (e.g. by concepts with no
  // requirements beyond CLASSIC-THING).
  Status st = Propagate({ind});
  if (!st.ok()) return Status::Internal(st.message());
  return ind;
}

Result<IndId> KnowledgeBase::CreateIndividual(std::string_view name,
                                              DescPtr initial) {
  CLASSIC_ASSIGN_OR_RETURN(IndId ind, CreateIndividual(name));
  CLASSIC_RETURN_NOT_OK(AssertInd(ind, std::move(initial)));
  return ind;
}

Status KnowledgeBase::AssertInd(IndId ind, DescPtr expr) {
  if (ind >= vocab_->num_individuals()) {
    return Status::NotFound(StrCat("no such individual id: ", ind));
  }
  if (!IsClassicIndividual(ind)) {
    return Status::InvalidArgument(
        StrCat("host individual ", vocab_->IndividualName(ind),
               " cannot be described (host individuals have no roles)"));
  }
  PropagationEngine engine(this);
  Status st = ApplyIndividualExpr(&engine, ind, expr);
  if (!st.ok()) {
    engine.Rollback();
    return st;
  }
  MutableState(ind).asserted.push_back(expr);
  base_log_.push_back({ind, std::move(expr)});
  return Status::OK();
}

namespace {

/// Separates CLOSE conjuncts from the descriptive part of an individual
/// expression. CLOSE may appear at the top level or under AND only (the
/// parser forbids it under ALL already, and normalization would reject
/// it).
void SplitClose(const DescPtr& expr, std::vector<DescPtr>* rest,
                std::vector<Symbol>* close_roles) {
  if (expr->kind() == DescKind::kClose) {
    close_roles->push_back(expr->role());
    return;
  }
  if (expr->kind() == DescKind::kAnd) {
    for (const DescPtr& c : expr->conjuncts()) {
      SplitClose(c, rest, close_roles);
    }
    return;
  }
  rest->push_back(expr);
}

}  // namespace

Status KnowledgeBase::ApplyIndividualExpr(PropagationEngine* engine, IndId ind,
                                          const DescPtr& expr) {
  std::vector<DescPtr> rest;
  std::vector<Symbol> close_roles;
  SplitClose(expr, &rest, &close_roles);

  const IndId inds_before = static_cast<IndId>(vocab_->num_individuals());

  if (!rest.empty()) {
    DescPtr descriptive =
        rest.size() == 1 ? rest[0] : Description::And(rest);
    CLASSIC_ASSIGN_OR_RETURN(
        NormalFormPtr nf, normalizer_->NormalizeIndividualExpr(descriptive));
    // Normalization may have interned fresh host values; classify them so
    // the instance indexes stay complete.
    for (IndId i = inds_before; i < vocab_->num_individuals(); ++i) {
      engine->Enqueue(i);
    }
    if (nf->incoherent()) {
      ++stats_.rejected_updates;
      return Status::Inconsistent(
          StrCat("asserted expression is itself incoherent (",
                 IncoherenceKindName(nf->incoherence_kind()),
                 "): ", nf->incoherence_reason()));
    }
    CLASSIC_RETURN_NOT_OK(engine->MergeInto(ind, *nf));
    // Let the descriptive part (and its deductions) settle before any
    // closure fixes the extension.
    CLASSIC_RETURN_NOT_OK(engine->Run());
  }

  for (Symbol role_name : close_roles) {
    CLASSIC_ASSIGN_OR_RETURN(RoleId role, vocab_->FindRole(role_name));
    NormalForm close_nf;
    RoleRestriction* rr = close_nf.MutableRole(role, *vocab_);
    rr->closed = true;
    rr->fillers = StateRef(ind).derived->role(role).fillers;
    close_nf.Tighten(*vocab_);
    CLASSIC_RETURN_NOT_OK(engine->MergeInto(ind, close_nf));
    CLASSIC_RETURN_NOT_OK(engine->Run());
  }
  return Status::OK();
}

Status KnowledgeBase::RetractInd(IndId ind, const DescPtr& expr) {
  if (ind >= states_.size() || !IsClassicIndividual(ind)) {
    return Status::NotFound("no assertions recorded for this individual");
  }
  IndividualState& st = MutableState(ind);
  const std::string needle = expr->ToString(vocab_->symbols());
  auto it = std::find_if(st.asserted.begin(), st.asserted.end(),
                         [&](const DescPtr& d) {
                           return d->ToString(vocab_->symbols()) == needle;
                         });
  if (it == st.asserted.end()) {
    return Status::NotFound(
        StrCat("expression was not asserted of ", vocab_->IndividualName(ind),
               ": ", needle));
  }
  st.asserted.erase(it);
  // Erase the FIRST matching log entry only: re-asserting the same
  // expression twice yields two entries, and retraction removes one
  // (multiset semantics).
  for (size_t i = 0; i < base_log_.size(); ++i) {
    const auto& entry = base_log_[i];
    if (entry.first == ind &&
        entry.second->ToString(vocab_->symbols()) == needle) {
      base_log_.EraseAt(i);
      break;
    }
  }
  return RederiveAll();
}

Status KnowledgeBase::RederiveAll() {
  // Keep base assertions; wipe all derivations, then replay the base log
  // in its original global order (the interleaving matters for CLOSE,
  // whose meaning is "the fillers known at that moment").
  for (size_t i = 0; i < states_.size(); ++i) {
    IndividualState& st = states_.Mutable(i);
    std::vector<DescPtr> asserted = std::move(st.asserted);
    st = IndividualState{};
    st.asserted = std::move(asserted);
    st.derived = IntrinsicForm(static_cast<IndId>(i));
  }
  instances_.Clear();
  referenced_by_.Clear();

  PropagationEngine engine(this);
  // Individuals with no assertions still need realization.
  for (size_t i = 0; i < states_.size(); ++i) {
    if (IsClassicIndividual(static_cast<IndId>(i))) {
      engine.Enqueue(static_cast<IndId>(i));
    }
  }
  Status st = engine.Run();
  for (size_t i = 0; i < base_log_.size(); ++i) {
    if (!st.ok()) break;
    // Copy the entry: replay re-enters propagation, which may path-copy
    // the chunk under a reference into it.
    const auto entry = base_log_[i];
    st = ApplyIndividualExpr(&engine, entry.first, entry.second);
  }
  if (!st.ok()) {
    return Status::Internal(
        StrCat("re-derivation became inconsistent: ", st.message()));
  }
  return Status::OK();
}

const IndividualState& KnowledgeBase::state(IndId ind) const {
  return StateRef(ind);
}

bool KnowledgeBase::IsClassicIndividual(IndId ind) const {
  return vocab_->individual(ind).kind == IndKind::kClassic;
}

const std::set<IndId>& KnowledgeBase::Instances(NodeId node) const {
  const std::set<IndId>* inds = instances_.Find(node);
  if (inds == nullptr) return EmptyIndSet();
  return *inds;
}

const std::set<IndId>& KnowledgeBase::Referencers(IndId ind) const {
  const std::set<IndId>* refs = referenced_by_.Find(ind);
  if (refs == nullptr) return EmptyIndSet();
  return *refs;
}

std::vector<IndId> KnowledgeBase::AllClassicIndividuals() const {
  std::vector<IndId> out;
  const IndId limit = num_visible_individuals();
  for (IndId i = 0; i < limit; ++i) {
    if (IsClassicIndividual(i)) out.push_back(i);
  }
  return out;
}

NormalFormPtr KnowledgeBase::IntrinsicForm(IndId ind) const {
  NormalForm nf;
  for (AtomId a : vocab_->IntrinsicAtoms(ind)) nf.AddAtom(a, *vocab_);
  // Freeze through the normalizer so intrinsic states share the store's
  // canonical objects (pointer fast paths, valid memo ids).
  return normalizer_->Freeze(std::move(nf));
}

const IndividualState& KnowledgeBase::StateRef(IndId ind) const {
  // Fast path: already materialized into the chunked store before this
  // epoch froze (or, on the master, at any earlier point — the master is
  // single-writer, so its size only moves under external sync).
  if (ind < states_.size()) return states_[ind];
  std::lock_guard<std::mutex> lock(states_mutex_);
  if (frozen_) {
    // Frozen epochs never write the shared chunks (they may be chunk-
    // shared with other epochs and with the live master). Individuals
    // interned after the freeze — host values materialized by query
    // normalization — get their intrinsic state in a snapshot-local side
    // table with stable addresses, guarded by states_mutex_.
    const size_t base = frozen_states_size_;
    while (base + state_overlay_.size() <= ind) {
      IndId id = static_cast<IndId>(base + state_overlay_.size());
      IndividualState st;
      st.derived = IntrinsicForm(id);
      state_overlay_.push_back(std::move(st));
    }
    return state_overlay_[ind - base];
  }
  while (states_.size() <= ind) {
    IndId id = static_cast<IndId>(states_.size());
    IndividualState st;
    st.derived = IntrinsicForm(id);
    states_.push_back(std::move(st));
  }
  return states_[ind];
}

IndividualState& KnowledgeBase::MutableState(IndId ind) {
  StateRef(ind);  // materialize first
  if (frozen_ && ind >= frozen_states_size_) {
    return state_overlay_[ind - frozen_states_size_];
  }
  return states_.Mutable(ind);
}

std::optional<IndId> KnowledgeBase::ResolvePath(IndId start,
                                                const RolePath& path) const {
  IndId cur = start;
  for (RoleId role : path) {
    if (!IsClassicIndividual(cur)) return std::nullopt;
    const RoleRestriction& rr = StateRef(cur).derived->role(role);
    if (rr.fillers.size() != 1) return std::nullopt;
    cur = *rr.fillers.begin();
  }
  return cur;
}

bool KnowledgeBase::Satisfies(IndId ind, const NormalForm& concept_nf) const {
  std::set<std::pair<IndId, const NormalForm*>> guard;
  return SatisfiesImpl(ind, concept_nf, &guard);
}

bool KnowledgeBase::SatisfiesImpl(
    IndId ind, const NormalForm& nf,
    std::set<std::pair<IndId, const NormalForm*>>* guard) const {
  ++stats_.satisfies_checks;
  CLASSIC_OBS_COUNT(kInstanceChecks);
  if (nf.incoherent()) return false;
  if (nf.IsThing()) return true;
  auto key = std::make_pair(ind, &nf);
  if (!guard->insert(key).second) {
    // Cycle through the filler graph: only finitely derivable knowledge
    // counts, so an in-progress goal is not yet proven.
    return false;
  }
  struct GuardPop {
    std::set<std::pair<IndId, const NormalForm*>>* g;
    std::pair<IndId, const NormalForm*> k;
    ~GuardPop() { g->erase(k); }
  } pop{guard, key};

  const NormalForm& derived = *StateRef(ind).derived;

  if (!std::includes(derived.atoms().begin(), derived.atoms().end(),
                     nf.atoms().begin(), nf.atoms().end())) {
    return false;
  }
  if (nf.enumeration() && nf.enumeration()->count(ind) == 0) return false;

  for (Symbol test : nf.tests()) {
    if (derived.tests().count(test) > 0) continue;
    auto fn = vocab_->FindTest(test);
    if (!fn.ok()) return false;
    TestArg arg;
    arg.ind = ind;
    const IndInfo& info = vocab_->individual(ind);
    arg.host = info.host ? &*info.host : nullptr;
    if (!(**fn)(arg)) return false;
  }

  for (const auto& [role, rc] : nf.roles()) {
    const RoleRestriction& ri = derived.role(role);
    // Attributes are single-valued by declaration even when the derived
    // record is absent or unclamped.
    uint32_t ri_at_most = ri.at_most;
    if (vocab_->role(role).attribute) {
      ri_at_most = std::min<uint32_t>(ri_at_most, 1);
    }
    if (ri.at_least < rc.at_least) return false;
    if (ri_at_most > rc.at_most) return false;
    if (rc.closed && !ri.closed) return false;
    if (!std::includes(ri.fillers.begin(), ri.fillers.end(),
                       rc.fillers.begin(), rc.fillers.end())) {
      return false;
    }
    if (rc.value_restriction && !rc.value_restriction->IsThing() &&
        ri.at_most > 0) {
      const NormalForm& want = *rc.value_restriction;
      bool ok = false;
      if (ri.value_restriction &&
          Subsumes(want, *ri.value_restriction,
                   taxonomy_.subsumption_index())) {
        ok = true;
      } else if (ri.closed) {
        ok = true;
        for (IndId f : ri.fillers) {
          if (!SatisfiesImpl(f, want, guard)) {
            ok = false;
            break;
          }
        }
      }
      if (!ok) return false;
    }
  }

  for (const auto& [p, q] : nf.coref().pairs()) {
    if (derived.coref().Entails(p, q)) continue;
    // Extensional evidence: both chains resolve to the same individual.
    std::optional<IndId> vp = ResolvePath(ind, p);
    std::optional<IndId> vq = ResolvePath(ind, q);
    if (!vp || !vq || *vp != *vq) return false;
  }

  return true;
}

Status KnowledgeBase::Propagate(const std::vector<IndId>& seeds) {
  PropagationEngine engine(this);
  for (IndId i : seeds) engine.Enqueue(i);
  Status st = engine.Run();
  if (!st.ok()) engine.Rollback();
  return st;
}

}  // namespace classic
