// Epochs: immutable published views of a KnowledgeBase.
//
// The serving layer follows a single-writer / multi-reader snapshot
// scheme. The writer owns a private master KnowledgeBase and mutates it
// freely; Publish() deep-clones the master into a KbSnapshot — an
// immutable view carrying the cloned database plus a monotonically
// increasing epoch number — and swaps it into the engine's current slot
// atomically. Readers grab a shared_ptr to whatever snapshot is current
// and keep using it for as long as they like: a snapshot can never change
// under them, and shared_ptr reference counting retires it exactly when
// the last reader lets go (epoch-based reclamation with the refcount as
// the epoch guard).
//
// Snapshots freeze their visible-individual bound at publish time
// (KnowledgeBase::FreezeVisibleIndividuals), so query normalization that
// interns fresh host values on the snapshot's logically-const caches
// never changes any answer set.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "kb/knowledge_base.h"

namespace classic {

/// \brief One published epoch: an immutable KnowledgeBase view.
///
/// The live-instance counter exists for the stress harness: it proves
/// that retired epochs are actually reclaimed while readers churn (bounded
/// memory), without poking at allocator internals.
class KbSnapshot {
 public:
  KbSnapshot(std::unique_ptr<const KnowledgeBase> kb, uint64_t epoch)
      : kb_(std::move(kb)), epoch_(epoch) {
    live_count_.fetch_add(1, std::memory_order_relaxed);
  }
  ~KbSnapshot() { live_count_.fetch_sub(1, std::memory_order_relaxed); }

  KbSnapshot(const KbSnapshot&) = delete;
  KbSnapshot& operator=(const KbSnapshot&) = delete;

  /// The database view. Const: all reachable mutation is the internally
  /// synchronized logically-const caching documented on KnowledgeBase.
  const KnowledgeBase& kb() const { return *kb_; }

  /// Publish sequence number (1 = first publish).
  uint64_t epoch() const { return epoch_; }

  /// Number of KbSnapshot instances currently alive in the process.
  static size_t live_count() {
    return live_count_.load(std::memory_order_relaxed);
  }

 private:
  std::unique_ptr<const KnowledgeBase> kb_;
  uint64_t epoch_;

  inline static std::atomic<size_t> live_count_{0};
};

using SnapshotPtr = std::shared_ptr<const KbSnapshot>;

}  // namespace classic
