// The CLASSIC knowledge base: individuals under an open-world assumption,
// with active deduction.
//
// This module implements Sections 3.2-3.4 of the paper:
//
//  - create-ind / assert-ind with FILLS, CLOSE and arbitrary concept
//    expressions; information accumulates monotonically;
//  - integrity checking: an update that contradicts earlier assertions is
//    rejected atomically (nothing changes);
//  - active deductions, run to a fixed point by a worklist engine:
//      * instance recognition ("the moment we learn that Rocky is enrolled
//        at some school we implicitly recognize Rocky as a STUDENT"),
//      * propagation of ALL restrictions to known role fillers,
//      * role closure from AT-MOST bounds,
//      * filler derivation from SAME-AS co-reference chains,
//      * forward-chaining rules (assert-rule), fired at most once per
//        (rule, individual) pair;
//  - cascade reclassification: when an individual's state changes, the
//    individuals referencing it as a filler are re-examined;
//  - retraction (the paper's announced "destructive updates"), realized by
//    removing the base assertion and re-deriving the whole assertional
//    state from the remaining base (derivations are never edited in
//    place).
//
// Termination follows the paper's argument: every derived quantity moves
// monotonically in a bounded lattice ("every individual can move into a
// class at most once (since there is no 'removal')"), and each rule fires
// at most once per individual.

#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "desc/normal_form.h"
#include "desc/normalize.h"
#include "desc/parser.h"
#include "desc/vocabulary.h"
#include "kb/fills_index.h"
#include "taxonomy/taxonomy.h"
#include "util/cow.h"
#include "util/stable_vector.h"
#include "util/status.h"

namespace classic {

class PropagationEngine;
class Propagator;
class ThreadPool;

/// \brief A forward-chaining rule: "if an individual is a <antecedent>
/// then it is also a <consequent>" (paper Section 3.3). Rules are
/// triggers, not logical implications: they fire when an individual is
/// *recognized* as an instance of the antecedent.
struct Rule {
  /// Taxonomy node of the named antecedent concept.
  NodeId antecedent = 0;
  /// Antecedent concept id (for printing / persistence).
  ConceptId antecedent_concept = 0;
  /// Consequent as written.
  DescPtr consequent_source;
  /// Consequent, normalized.
  NormalFormPtr consequent;
};

/// \brief Assertional state of one CLASSIC individual.
struct IndividualState {
  /// Base assertions, as asserted (the replay log for retraction).
  std::vector<DescPtr> asserted;
  /// Everything currently derivable, as one normal form. Never null.
  NormalFormPtr derived;
  /// Every taxonomy node this individual is a recognized instance of.
  std::set<NodeId> subsumer_nodes;
  /// Most specific of the above ("the lowest concept(s) in the schema
  /// whose description(s) it satisfies", Section 5).
  std::set<NodeId> msc;
  /// Rules already fired for this individual (indices into rules()).
  std::set<size_t> applied_rules;
};

/// \brief Engine statistics, exposed for the benchmark harness.
///
/// Counters are relaxed atomics: several reader threads bump them while
/// serving queries from one shared snapshot, and a racy total would be a
/// reported data race under TSan even where the imprecision is harmless.
struct KbStats {
  KbStats() = default;
  KbStats(const KbStats& other)
      : propagation_steps(other.propagation_steps.load()),
        rule_firings(other.rule_firings.load()),
        realizations(other.realizations.load()),
        satisfies_checks(other.satisfies_checks.load()),
        rejected_updates(other.rejected_updates.load()) {}

  std::atomic<size_t> propagation_steps{0};
  std::atomic<size_t> rule_firings{0};
  std::atomic<size_t> realizations{0};
  std::atomic<size_t> satisfies_checks{0};
  std::atomic<size_t> rejected_updates{0};
};

/// \brief A CLASSIC database: schema + individuals + rules.
///
/// Thread-safety contract (see DESIGN.md section 7): all mutating
/// operations (DDL, DML, retraction) follow a single-writer discipline —
/// at most one thread mutates a given KnowledgeBase, with no concurrent
/// readers *of that object*. Read-only operations (queries, Satisfies,
/// introspection) are safe from any number of threads concurrently,
/// because every logically-const cache they touch (symbol/host-value
/// interning, the normal-form store, the subsumption memo, lazy state
/// materialization, stats counters) is internally synchronized. The
/// epoch layer in kb/kb_engine.h builds on this: the writer mutates a
/// private master and publishes immutable clones for readers.
class KnowledgeBase {
 public:
  KnowledgeBase();

  /// \brief Copy-on-write copy for epoch publishing: a KnowledgeBase
  /// whose meaning, ids (Symbols, IndIds, NfIds, NodeIds) and memo
  /// contents coincide with this one, built in O(delta) — the copy
  /// *shares* the vocabulary, normalizer, subsumption memo and the
  /// chunked stores (states, base log, taxonomy arrays) with the source;
  /// the instance/reference indexes share frozen delta layers. The single
  /// writer path-copies whatever it touches next, so the copy never
  /// changes after the call. The source must not be concurrently mutated
  /// during the call (single-writer discipline).
  std::unique_ptr<KnowledgeBase> Clone() const;

  Vocabulary& vocab() { return *vocab_; }
  const Vocabulary& vocab() const { return *vocab_; }
  Taxonomy& taxonomy() { return taxonomy_; }
  const Taxonomy& taxonomy() const { return taxonomy_; }
  /// The normalizer's only mutable state is its hash-consing store, a
  /// cache; normalizing a query never changes database meaning.
  Normalizer& normalizer() const { return *normalizer_; }
  const KbStats& stats() const { return stats_; }

  // --- Schema operations (DDL) -------------------------------------------

  /// \brief define-role. Attributes are single-valued (usable in SAME-AS).
  Result<RoleId> DefineRole(std::string_view name, bool attribute = false);

  /// \brief define-concept: names a description, normalizes it and
  /// classifies it into the taxonomy. Definitions may reference only
  /// already-defined concepts, so the terminology is acyclic by
  /// construction.
  Result<ConceptId> DefineConcept(std::string_view name, DescPtr definition);

  /// \brief assert-rule[antecedent-name, consequent]: adds a forward
  /// rule and immediately fires it for all current instances.
  Result<size_t> AssertRule(std::string_view antecedent_name,
                            DescPtr consequent);

  const std::vector<Rule>& rules() const { return rules_; }
  /// Rules attached to a node.
  std::vector<size_t> RulesOnNode(NodeId node) const;

  // --- Individual operations (DML) ---------------------------------------

  /// \brief create-ind[name]; knows nothing beyond being a THING
  /// (a CLASSIC-THING, precisely).
  Result<IndId> CreateIndividual(std::string_view name);

  /// \brief create-ind[name, desc]: create and immediately assert.
  Result<IndId> CreateIndividual(std::string_view name, DescPtr initial);

  /// \brief assert-ind[ind, expr]: adds information about an individual.
  ///
  /// The expression may use FILLS, CLOSE and any concept constructor.
  /// If the new information contradicts what is known (an integrity
  /// violation), the call returns kInconsistent and the database is
  /// unchanged.
  Status AssertInd(IndId ind, DescPtr expr);

  /// \brief Bulk load: asserts many (individual, expression) pairs as
  /// ONE atomic update. All descriptive parts are normalized up front
  /// and settle together in a single propagation wavefront (which the
  /// worklist engine can partition across a thread pool — see
  /// SetPropagationPool); CLOSE conjuncts are then applied in batch
  /// order against that settled state, so "the fillers known at that
  /// moment" means after the whole batch's descriptive fixed point. Any
  /// contradiction rejects the entire batch atomically.
  Status AssertIndBatch(const std::vector<std::pair<IndId, DescPtr>>& batch);

  /// \brief Retracts a previously asserted expression (matched
  /// structurally) and re-derives the database from the remaining base
  /// assertions. The paper's announced "destructive update" facility.
  Status RetractInd(IndId ind, const DescPtr& expr);

  /// \brief Installs (or clears, with nullptr) the pool the propagation
  /// engine may schedule independent role-graph components on. The pool
  /// is borrowed, not owned, and is used strictly *inside* one mutating
  /// call — the single-writer discipline is unchanged. Serial and
  /// pooled propagation derive byte-identical state (propagation is a
  /// confluent fixed point; see kb/propagate.h).
  void SetPropagationPool(ThreadPool* pool) { propagation_pool_ = pool; }
  ThreadPool* propagation_pool() const { return propagation_pool_; }

  /// \brief Re-runs propagation from every CLASSIC individual. The
  /// derived state is already a fixed point, so this is a (cheap)
  /// no-op on a consistent database — it exists so tools and tests can
  /// drive the worklist engine over the full role graph on demand.
  Status Repropagate();

  /// \brief True iff some registered rule's consequent mentions
  /// individuals (FILLS / ONE-OF); such rules can create role edges the
  /// component partition cannot predict, so propagation stays serial.
  bool rules_mention_individuals() const { return rules_mention_inds_; }

  /// \brief A canonical, byte-comparable rendering of ALL derived
  /// state: per individual the derived normal form, explicit closed
  /// roles, most-specific concepts and fired rules; then every taxonomy
  /// node's instance set. Two databases with the same vocabulary derive
  /// the same string iff their assertional fixed points coincide — the
  /// determinism harness diffs this across serial and parallel runs.
  std::string CanonicalDerivedState() const;

  // --- Inspection ---------------------------------------------------------

  const IndividualState& state(IndId ind) const;
  bool IsClassicIndividual(IndId ind) const;

  /// \brief All recognized instances of a taxonomy node (full extension,
  /// maintained incrementally).
  const std::set<IndId>& Instances(NodeId node) const;

  /// \brief Filler-inverted postings + host-value range index (query
  /// planner access paths). Immutable on published snapshots.
  const FillsIndex& fills_index() const { return fills_index_; }

  /// \brief All CLASSIC individuals created so far (visible ones, on a
  /// frozen snapshot).
  std::vector<IndId> AllClassicIndividuals() const;

  /// \brief Upper bound (exclusive) on the individual ids that queries
  /// enumerate. On the live/master database this is simply
  /// vocab().num_individuals(). On a published snapshot it is frozen at
  /// publish time, so host values interned *while serving queries* (e.g.
  /// a literal mentioned only in a query expression) never leak into
  /// answer sets — that is what makes concurrent batch answers
  /// byte-identical to serial ones regardless of interleaving.
  IndId num_visible_individuals() const {
    return visible_ind_limit_ != kNoId
               ? visible_ind_limit_
               : static_cast<IndId>(vocab_->num_individuals());
  }

  /// \brief Freezes the visible-individual bound at the current count
  /// (called by the epoch layer on a fresh clone, before publishing it).
  /// A frozen KB also stops extending its shared state store: lazy state
  /// materialization (host literals interned by queries) goes to a
  /// snapshot-local overlay, so the chunks shared with the master and
  /// with other epochs are never written again.
  void FreezeVisibleIndividuals() {
    visible_ind_limit_ = static_cast<IndId>(vocab_->num_individuals());
    frozen_ = true;
    frozen_states_size_ = states_.size();
  }

  /// \brief Publish instrumentation: chunk/value copies performed by the
  /// writer's copy-on-write stores since the last call (the physical
  /// write delta this epoch), and the approximate bytes of chunk storage
  /// a fresh Clone() shares instead of copying.
  size_t TakeCowCopyCount();
  size_t ApproxSharedCowBytes() const;

  /// \brief Individuals that mention `ind` as a role filler (the reverse
  /// filler index; used for cascade reclassification and reverse joins).
  const std::set<IndId>& Referencers(IndId ind) const;

  /// \brief True iff the individual's known state entails the concept.
  ///
  /// This is the open-world instance test: (ALL r C) holds only when it
  /// was asserted (value restriction subsumed) or the role is closed and
  /// every known filler satisfies C; (AT-LEAST n r) holds when enough
  /// distinct fillers are known or a bound was asserted; TEST functions
  /// are executed.
  bool Satisfies(IndId ind, const NormalForm& concept_nf) const;

  /// \brief Walks a chain of roles through unique known fillers; returns
  /// the end individual if every step resolves.
  std::optional<IndId> ResolvePath(IndId start, const RolePath& path) const;

  /// \brief Runs the worklist propagation engine from `seeds`
  /// (deduplicated) to a fixed point; rolls back every touched
  /// individual on inconsistency. Propagation is monotone, so seeding
  /// already-settled individuals is a safe (and then cheap) no-op —
  /// which is what makes this safe to expose: callers can only trigger
  /// re-derivation, never invent assertions.
  Status Propagate(const std::vector<IndId>& seeds);

 private:
  friend class PropagationEngine;
  friend class Propagator;

  /// Clone() plumbing: the structure-sharing copy behind epoch publishes.
  KnowledgeBase(const KnowledgeBase& other);

  /// Recursive instance test with a cycle guard (individual graphs may be
  /// cyclic; in-progress pairs conservatively fail, which keeps the test
  /// sound for derivable knowledge).
  bool SatisfiesImpl(IndId ind, const NormalForm& nf,
                     std::set<std::pair<IndId, const NormalForm*>>* guard)
      const;

  /// Re-derives everything from base assertions (retraction support).
  Status RederiveAll();

  /// Applies one asserted individual expression through `prop`. CLOSE
  /// conjuncts are peeled off and applied against the state *after* the
  /// descriptive part has propagated: closing a role fixes its extension
  /// to the fillers known at that moment (Section 3.2).
  Status ApplyIndividualExpr(Propagator* prop, IndId ind,
                             const DescPtr& expr);

  /// Normal form of what an individual intrinsically is (CLASSIC-THING,
  /// or the host type chain).
  NormalFormPtr IntrinsicForm(IndId ind) const;

  /// Returns the state record for `ind`, materializing records lazily
  /// (normalization may intern new host individuals at any time). On a
  /// frozen snapshot, materialization lands in the snapshot-local overlay
  /// so the chunked store shared with other epochs stays untouched;
  /// reads of existing records are lock-free either way.
  const IndividualState& StateRef(IndId ind) const;

  /// Writer-only mutable access to a state record (path-copies a shared
  /// chunk on first touch per epoch). Never called on a frozen snapshot.
  IndividualState& MutableState(IndId ind);

  /// One shared Vocabulary/Normalizer serves the master and every
  /// published epoch — that is what keeps ids consistent across epochs
  /// with zero copying. Both are safe for one writer + many readers.
  std::shared_ptr<Vocabulary> vocab_;
  std::shared_ptr<Normalizer> normalizer_;
  Taxonomy taxonomy_;

  /// Indexed by IndId. Chunked copy-on-write store shared across epochs;
  /// the writer mutates through MutableState (path-copying), snapshots
  /// only read. Mutable because the master lazily materializes records
  /// from logically-const paths.
  mutable CowVector<IndividualState> states_;
  /// Snapshot-local overlay for records materialized after the freeze
  /// (host literals interned while serving queries). Indexed by
  /// ind - frozen_states_size_; append-only with stable addresses.
  mutable StableVector<IndividualState> state_overlay_;
  mutable std::mutex states_mutex_;
  /// True on published snapshots (set by FreezeVisibleIndividuals).
  bool frozen_ = false;
  size_t frozen_states_size_ = 0;

  /// kNoId on the live/master database; set on published snapshots.
  IndId visible_ind_limit_ = kNoId;
  /// All accepted assertions in global order (replay preserves the
  /// interleaving across individuals, which matters for CLOSE).
  CowVector<std::pair<IndId, DescPtr>> base_log_;
  /// Layered delta maps: frozen layers shared across epochs, one mutable
  /// overlay on the writer. Mutable so Clone() can freeze the overlay.
  mutable CowMap<NodeId, std::set<IndId>> instances_;
  mutable CowMap<NodeId, std::vector<size_t>> rules_on_node_;
  std::vector<Rule> rules_;
  /// Latched when any rule consequent mentions individuals (see
  /// rules_mention_individuals()); recomputed if a rule is rejected.
  bool rules_mention_inds_ = false;
  /// Borrowed worker pool for component-parallel propagation; nullptr =
  /// always serial. Never copied into epoch clones (snapshots are
  /// immutable and never propagate).
  ThreadPool* propagation_pool_ = nullptr;
  /// Reverse filler index: who mentions ind as a filler (cascade
  /// reclassification).
  mutable CowMap<IndId, std::set<IndId>> referenced_by_;
  /// Filler-inverted postings + host-value range index for the query
  /// planner. Maintained alongside referenced_by_ (same single call
  /// site in PropagateToFillers), forked on publish, rebuilt by
  /// RederiveAll.
  mutable FillsIndex fills_index_;

  mutable KbStats stats_;
};

}  // namespace classic
