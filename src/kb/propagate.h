// The propagation engine: active deductions run to a fixed point, now as
// an explicit dependency-worklist machine (DESIGN.md section 12).
//
// One update (assert-ind, a bulk batch, define-concept reclassification,
// rule firing) seeds a wavefront. The Propagator partitions the seeds
// into weakly-connected components of the individual role graph — the
// closure over every individual mentioned anywhere in a derived normal
// form (fillers at any nesting depth, enumeration members) plus the
// reverse-filler index — and schedules independent components onto a
// util::ThreadPool. Components are disjoint by construction, and every
// state a component's fixed point can read or write lies inside its own
// closure, so workers never synchronize with each other: each runs the
// same serial wave engine the single-threaded path uses, journals its
// writes for rollback, and stages its instance/reference index updates
// for a serial commit after the join.
//
// Determinism argument (the property the test suite pins): propagation
// is a monotone operator over a bounded lattice — derived forms only
// gain conjuncts, recognition never retracts, each rule fires at most
// once per individual — so the fixed point is *confluent*: any fair
// processing order reaches the same least fixed point, and a
// contradiction (incoherent meet) is derived under every order or none.
// Partitioning therefore cannot change the result, only the schedule;
// serial and N-thread propagation produce byte-identical canonical
// derived state (tests/propagate_determinism_test.cc) and the same
// accept/reject verdict.
//
// Two deliberate conservatisms keep the closure argument airtight:
//
//  - Host individuals never glue components: their derived state is
//    intrinsic and immutable, so cross-component *reads* of a shared
//    host filler are safe, and the one component that discovers an
//    unclaimed host owns its (idempotent) realization.
//  - A rule whose consequent mentions individuals could create a role
//    edge between any two components when it fires, which the
//    partition cannot predict; such a knowledge base propagates
//    serially (KnowledgeBase tracks the gate on assert-rule).
//
// Rollback: every touched individual's pre-state is journaled on first
// touch (per update, across all phases and components); on
// inconsistency the Propagator restores the journal and erases the
// applied index insertions, so no partial derived state survives —
// in-flight components run to their own (bounded) fixed point and are
// then discarded wholesale, which also keeps the reported error
// deterministic.

#pragma once

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "kb/knowledge_base.h"
#include "util/bitset.h"
#include "util/status.h"

namespace classic {

class ThreadPool;

/// \brief True iff the normal form mentions any individual at any
/// nesting depth: role fillers, fillers inside value restrictions,
/// enumeration members. Used for the rule-consequent parallelism gate
/// and the component closure scan.
bool MentionsIndividuals(const NormalForm& nf);

/// \brief Appends every individual the form mentions (any depth) to
/// `out`, in deterministic scan order. May contain duplicates.
void CollectMentionedIndividuals(const NormalForm& nf,
                                 std::vector<IndId>* out);

/// \brief Everything one update wrote, for atomic rollback. Shared by
/// all phases of one logical update (descriptive wave, CLOSE waves,
/// every parallel component), so a late contradiction unwinds the whole
/// update.
struct PropagationJournal {
  /// Pre-update state of every touched individual (first touch wins).
  std::map<IndId, IndividualState> undo;
  /// (node, ind) pairs actually inserted into the instance index.
  std::vector<std::pair<NodeId, IndId>> instance_inserts;
  /// (filler, host) pairs actually inserted into the reverse index.
  std::vector<std::pair<IndId, IndId>> refs_added;
  /// (posting key, host) pairs actually inserted into the fills index
  /// (the key packs role and filler; see FillsIndex::Key).
  std::vector<std::pair<uint64_t, IndId>> postings_added;
};

/// \brief The wave-based worklist engine. Runs one region (the whole
/// database, or one connected component) to a fixed point.
///
/// The worklist is processed in wavefronts: all individuals dirty at
/// the start of a wave are re-derived exactly once (a DynamicBitset
/// dedupes re-enqueues, so an individual re-normalizes at most once per
/// wavefront); derivations they trigger form the next wave.
///
/// Unscoped engines (scope == nullptr) write the instance/reference
/// indexes directly, journaling for rollback — the serial path.
/// Scoped engines are confined to one component: they write individual
/// states in place (the Propagator pre-owns the underlying chunks), but
/// *stage* index updates locally; the Propagator commits stages
/// serially after the parallel join. A scoped engine that would touch
/// an individual outside its scope defers the work instead (pending
/// merges/seeds), which the Propagator drains serially — a defensive
/// path the closure construction should make unreachable.
class PropagationEngine {
 public:
  PropagationEngine(KnowledgeBase* kb, PropagationJournal* journal,
                    const DynamicBitset* scope = nullptr);

  /// Marks an individual dirty for the next wavefront.
  void Enqueue(IndId ind);

  /// Merges extra knowledge into an individual's derived state;
  /// enqueues it (and its referencers) if anything changed.
  Status MergeInto(IndId ind, const NormalForm& nf);

  /// Drains wavefronts to the fixed point. May be called repeatedly on
  /// one engine (the CLOSE phases re-enter with new merges).
  Status Run();

  // --- Scoped-mode staging (committed by the Propagator) -------------------

  const std::set<std::pair<NodeId, IndId>>& staged_instances() const {
    return staged_instances_;
  }
  const std::map<IndId, std::set<IndId>>& staged_refs() const {
    return staged_refs_;
  }
  const std::map<uint64_t, std::set<IndId>>& staged_postings() const {
    return staged_postings_;
  }
  const std::vector<std::pair<IndId, NormalFormPtr>>& pending_merges() const {
    return pending_merges_;
  }
  const std::vector<IndId>& pending_seeds() const { return pending_seeds_; }

  // --- Worklist statistics -------------------------------------------------

  size_t waves() const { return waves_; }
  size_t max_wave() const { return max_wave_; }
  size_t dedup_hits() const { return dedup_hits_; }
  // KbStats deltas, accumulated locally so worker engines never write the
  // shared (non-atomic) stats block; the Propagator folds them back in on
  // the writer thread after the join.
  size_t steps() const { return steps_; }
  size_t realizations() const { return realizations_; }
  size_t rule_firings() const { return rule_firings_; }

 private:
  /// Journals (first touch) and returns a writable state record.
  IndividualState& Touch(IndId ind);

  /// One worklist step: re-derive everything about one individual.
  Status Step(IndId ind);
  Status PropagateToFillers(IndId ind);
  Status PropagateCoref(IndId ind);
  void Realize(IndId ind);
  Status FireRules(IndId ind);

  /// Adds host to the reverse-filler index of filler (direct when
  /// unscoped, staged when scoped). True iff the pair was new.
  bool AddReference(IndId filler, IndId host);

  /// Records host's derived (role, filler) in the filler-inverted
  /// postings (direct when unscoped, staged when scoped). Same single
  /// call site as AddReference, so the index is complete for the same
  /// reason the reverse index is.
  void AddPosting(RoleId role, IndId filler, IndId host);

  KnowledgeBase* kb_;
  PropagationJournal* journal_;
  /// Component membership; nullptr = unscoped (whole database).
  const DynamicBitset* scope_;

  /// Next wavefront, with its dirty-bit dedupe set.
  std::vector<IndId> next_;
  DynamicBitset queued_;

  /// Scoped-mode staging.
  std::set<std::pair<NodeId, IndId>> staged_instances_;
  std::map<IndId, std::set<IndId>> staged_refs_;
  std::map<uint64_t, std::set<IndId>> staged_postings_;
  std::vector<std::pair<IndId, NormalFormPtr>> pending_merges_;
  std::vector<IndId> pending_seeds_;

  size_t waves_ = 0;
  size_t max_wave_ = 0;
  size_t dedup_hits_ = 0;
  size_t steps_ = 0;
  size_t realizations_ = 0;
  size_t rule_firings_ = 0;
};

/// \brief Orchestrates one logical update: seed dedupe, component
/// partitioning, parallel scheduling, staged commit, and whole-update
/// rollback. One Propagator lives for one update (possibly several
/// phases); its journal accumulates across phases.
class Propagator {
 public:
  /// `pool` may be null (always serial). The pool is only consulted
  /// when a run has enough independent components to be worth forking.
  Propagator(KnowledgeBase* kb, ThreadPool* pool);

  /// Runs one propagation phase to the fixed point: `merges` are
  /// applied first (in order), then `seeds` are enqueued (deduplicated,
  /// in order). On error the database is left dirty — the caller must
  /// invoke RollbackAll() (this keeps multi-phase updates atomic).
  Status Run(const std::vector<IndId>& seeds,
             const std::vector<std::pair<IndId, NormalFormPtr>>& merges);

  /// Restores every individual/index touched by any phase run through
  /// this Propagator and bumps the rejected-updates stat.
  void RollbackAll();

 private:
  struct Component {
    std::vector<IndId> members;  // discovery order; defines the scope
    DynamicBitset scope;
    std::vector<IndId> seeds;
    std::vector<std::pair<IndId, NormalFormPtr>> merges;
  };

  /// Serial fallback / small-update fast path.
  Status RunSerial(const std::vector<IndId>& seeds,
                   const std::vector<std::pair<IndId, NormalFormPtr>>& merges,
                   size_t* waves, size_t* max_wave);

  /// Weakly-connected-component closure over the role graph, from the
  /// seeds/merge targets. Returns components in deterministic order.
  std::vector<Component> Partition(
      const std::vector<IndId>& seeds,
      const std::vector<std::pair<IndId, NormalFormPtr>>& merges) const;

  KnowledgeBase* kb_;
  ThreadPool* pool_;
  PropagationJournal journal_;
};

}  // namespace classic
