#include "kb/explain.h"

#include <algorithm>

#include "subsume/subsume.h"
#include "util/string_util.h"

namespace classic {

std::string Explanation::ToString(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += holds ? "[ok] " : "[NO] ";
  out += summary;
  out += '\n';
  for (const auto& p : parts) out += p.ToString(indent + 1);
  return out;
}

namespace {

Explanation Leaf(bool holds, std::string summary) {
  return Explanation{holds, std::move(summary), {}};
}

std::string AtomName(const Vocabulary& vocab, AtomId a) {
  return vocab.symbols().Name(vocab.atom(a).name);
}

std::string RoleName(const Vocabulary& vocab, RoleId r) {
  return vocab.symbols().Name(vocab.role(r).name);
}

std::string BoundStr(uint32_t n) {
  return n == kUnbounded ? "unbounded" : std::to_string(n);
}

}  // namespace

Explanation ExplainSatisfies(const KnowledgeBase& kb, IndId ind,
                             const NormalForm& nf) {
  const Vocabulary& vocab = kb.vocab();
  Explanation out;
  out.summary = StrCat(vocab.IndividualName(ind),
                       " satisfies ", nf.ToString(vocab), "?");
  if (nf.incoherent()) {
    out.holds = false;
    out.parts.push_back(
        Leaf(false, "the concept is incoherent (NOTHING); no individual "
                    "can satisfy it"));
    return out;
  }
  const NormalForm& derived = *kb.state(ind).derived;
  out.holds = true;

  for (AtomId a : nf.atoms()) {
    bool has = derived.atoms().count(a) > 0;
    out.parts.push_back(
        Leaf(has, StrCat("primitive ", AtomName(vocab, a),
                         has ? " is derivable" : " is not derivable")));
    out.holds &= has;
  }

  if (nf.enumeration()) {
    bool in = nf.enumeration()->count(ind) > 0;
    out.parts.push_back(Leaf(
        in, StrCat("identity ", in ? "is" : "is not",
                   " among the enumerated individuals (unique names)")));
    out.holds &= in;
  }

  for (Symbol test : nf.tests()) {
    bool ok = false;
    std::string how;
    if (derived.tests().count(test) > 0) {
      ok = true;
      how = "was asserted";
    } else {
      auto fn = vocab.FindTest(test);
      if (fn.ok()) {
        TestArg arg;
        arg.ind = ind;
        const IndInfo& info = vocab.individual(ind);
        arg.host = info.host ? &*info.host : nullptr;
        ok = (**fn)(arg);
        how = ok ? "evaluated to true" : "evaluated to false";
      } else {
        how = "is not registered";
      }
    }
    out.parts.push_back(Leaf(
        ok, StrCat("TEST ", vocab.symbols().Name(test), " ", how)));
    out.holds &= ok;
  }

  for (const auto& [role, rc] : nf.roles()) {
    const RoleRestriction& ri = derived.role(role);
    const std::string rn = RoleName(vocab, role);
    uint32_t ri_at_most = ri.at_most;
    if (vocab.role(role).attribute) {
      ri_at_most = std::min<uint32_t>(ri_at_most, 1);
    }

    if (rc.at_least > 0) {
      bool ok = ri.at_least >= rc.at_least;
      out.parts.push_back(Leaf(
          ok, StrCat("needs at least ", rc.at_least, " ", rn, "; ",
                     ri.at_least, " derivable")));
      out.holds &= ok;
    }
    if (rc.at_most != kUnbounded) {
      bool ok = ri_at_most <= rc.at_most;
      out.parts.push_back(Leaf(
          ok, StrCat("needs at most ", rc.at_most, " ", rn,
                     "; derivable upper bound is ", BoundStr(ri_at_most),
                     ok ? "" : " (open world: more fillers possible)")));
      out.holds &= ok;
    }
    for (IndId f : rc.fillers) {
      bool ok = ri.fillers.count(f) > 0;
      out.parts.push_back(Leaf(
          ok, StrCat(rn, " must be filled by ", vocab.IndividualName(f),
                     ok ? "; it is" : "; no such filler is known")));
      out.holds &= ok;
    }
    if (rc.closed) {
      bool ok = ri.closed;
      out.parts.push_back(
          Leaf(ok, StrCat(rn, ok ? " is closed" : " is not closed")));
      out.holds &= ok;
    }
    if (rc.value_restriction && !rc.value_restriction->IsThing() &&
        ri_at_most > 0) {
      const NormalForm& want = *rc.value_restriction;
      Explanation vr;
      vr.summary = StrCat("all ", rn, " fillers must satisfy ",
                          want.ToString(vocab));
      if (ri.value_restriction && Subsumes(want, *ri.value_restriction)) {
        vr.holds = true;
        vr.parts.push_back(Leaf(
            true, StrCat("an asserted restriction on ", rn,
                         " already entails it")));
      } else if (ri.closed) {
        vr.holds = true;
        for (IndId f : ri.fillers) {
          Explanation sub = ExplainSatisfies(kb, f, want);
          vr.holds &= sub.holds;
          vr.parts.push_back(std::move(sub));
        }
        if (ri.fillers.empty()) {
          vr.parts.push_back(
              Leaf(true, StrCat(rn, " is closed with no fillers")));
        }
      } else {
        vr.holds = false;
        vr.parts.push_back(Leaf(
            false,
            StrCat("no asserted restriction entails it and ", rn,
                   " is not closed (unknown fillers might violate it)")));
      }
      out.holds &= vr.holds;
      out.parts.push_back(std::move(vr));
    }
  }

  for (const auto& [p, q] : nf.coref().pairs()) {
    auto path_str = [&](const RolePath& path) {
      std::vector<std::string> names;
      for (RoleId r : path) names.push_back(RoleName(vocab, r));
      return "(" + Join(names, " ") + ")";
    };
    bool ok = false;
    std::string how;
    if (derived.coref().Entails(p, q)) {
      ok = true;
      how = "entailed by asserted co-references";
    } else {
      auto vp = kb.ResolvePath(ind, p);
      auto vq = kb.ResolvePath(ind, q);
      if (vp && vq && *vp == *vq) {
        ok = true;
        how = StrCat("both chains resolve to ",
                     vocab.IndividualName(*vp));
      } else if (vp && vq) {
        how = StrCat("chains resolve to distinct individuals ",
                     vocab.IndividualName(*vp), " and ",
                     vocab.IndividualName(*vq));
      } else {
        how = "a chain does not resolve to a unique known filler";
      }
    }
    out.parts.push_back(Leaf(
        ok, StrCat("co-reference ", path_str(p), " == ", path_str(q),
                   ": ", how)));
    out.holds &= ok;
  }

  if (out.parts.empty()) {
    out.parts.push_back(Leaf(true, "THING holds of everything"));
  }
  return out;
}

Explanation ExplainSubsumes(const KnowledgeBase& kb,
                            const NormalForm& general,
                            const NormalForm& specific) {
  const Vocabulary& vocab = kb.vocab();
  Explanation out;
  out.summary = StrCat(general.ToString(vocab), "  subsumes  ",
                       specific.ToString(vocab), "?");
  if (specific.incoherent()) {
    out.holds = true;
    out.parts.push_back(
        Leaf(true, "the subsumee is incoherent (NOTHING); everything "
                   "subsumes it"));
    return out;
  }
  if (general.incoherent()) {
    out.holds = false;
    out.parts.push_back(
        Leaf(false, "only NOTHING is subsumed by an incoherent concept"));
    return out;
  }
  out.holds = true;

  for (AtomId a : general.atoms()) {
    bool has = specific.atoms().count(a) > 0;
    out.parts.push_back(Leaf(
        has, StrCat("primitive ", AtomName(vocab, a),
                    has ? " required and present" : " required but absent")));
    out.holds &= has;
  }
  if (general.enumeration()) {
    bool ok = specific.enumeration() &&
              std::includes(general.enumeration()->begin(),
                            general.enumeration()->end(),
                            specific.enumeration()->begin(),
                            specific.enumeration()->end());
    out.parts.push_back(Leaf(
        ok, ok ? "the subsumee's enumeration is a subset"
               : "the subsumee is not confined to the enumeration"));
    out.holds &= ok;
  }
  for (Symbol t : general.tests()) {
    bool ok = specific.tests().count(t) > 0;
    out.parts.push_back(Leaf(
        ok, StrCat("TEST ", vocab.symbols().Name(t),
                   ok ? " present in the subsumee"
                      : " absent from the subsumee (tests are opaque)")));
    out.holds &= ok;
  }
  for (const auto& [role, rg] : general.roles()) {
    const RoleRestriction& rs = specific.role(role);
    const std::string rn = RoleName(vocab, role);
    if (rg.at_least > 0) {
      bool ok = rs.at_least >= rg.at_least;
      out.parts.push_back(Leaf(
          ok, StrCat("AT-LEAST ", rg.at_least, " ", rn, " vs subsumee's ",
                     rs.at_least)));
      out.holds &= ok;
    }
    if (rg.at_most != kUnbounded) {
      bool ok = rs.at_most <= rg.at_most;
      out.parts.push_back(Leaf(
          ok, StrCat("AT-MOST ", rg.at_most, " ", rn, " vs subsumee's ",
                     BoundStr(rs.at_most))));
      out.holds &= ok;
    }
    for (IndId f : rg.fillers) {
      bool ok = rs.fillers.count(f) > 0;
      out.parts.push_back(Leaf(
          ok, StrCat("FILLS ", rn, " ", vocab.IndividualName(f),
                     ok ? " present" : " absent")));
      out.holds &= ok;
    }
    if (rg.closed) {
      bool ok = rs.closed;
      out.parts.push_back(Leaf(
          ok, StrCat(rn, ok ? " closed in both" : " not closed in the "
                                                  "subsumee")));
      out.holds &= ok;
    }
    if (rg.value_restriction && !rg.value_restriction->IsThing()) {
      if (rs.at_most == 0) {
        out.parts.push_back(Leaf(
            true, StrCat("(ALL ", rn, " ...) holds vacuously: the "
                         "subsumee admits no ", rn, " fillers")));
      } else {
        Explanation sub = ExplainSubsumes(
            kb, *rg.value_restriction,
            rs.value_restriction ? *rs.value_restriction
                                 : ThingNormalForm());
        sub.summary = StrCat("value restriction on ", rn, ": ",
                             sub.summary);
        out.holds &= sub.holds;
        out.parts.push_back(std::move(sub));
      }
    }
  }
  for (const auto& [p, q] : general.coref().pairs()) {
    bool ok = specific.coref().Entails(p, q);
    out.parts.push_back(Leaf(
        ok, ok ? "required co-reference entailed by the subsumee"
               : "required co-reference not entailed by the subsumee"));
    out.holds &= ok;
  }
  if (out.parts.empty()) {
    out.parts.push_back(Leaf(true, "THING subsumes everything"));
  }
  return out;
}

}  // namespace classic
