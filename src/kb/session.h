// Session: the epoch-pinned request surface over KbEngine.
//
// Everything that asks the engine questions — the repl's epoch ops, the
// network serving front-end (src/serve), and in-process callers — goes
// through one facade instead of three ad-hoc paths. A Session is a view
// of one engine pinned to one published epoch:
//
//   - construction pins the engine's current epoch (or stays unpinned if
//     nothing has been published yet);
//   - Sync() re-pins to the latest epoch, PinEpoch(e) re-pins to a
//     retained historical epoch — the wire protocol's (sync) / (as-of E)
//     session ops map 1:1 onto these;
//   - Serve()/ServeBatch() evaluate requests against the pinned
//     snapshot; a request carrying its own as_of_epoch is routed to that
//     retained epoch instead (per-request time travel within a pinned
//     session);
//   - Publish(source) captures the writer's database as the next epoch
//     and re-pins the session to it (the repl's (publish)).
//
// Pinning is what makes a network connection snapshot-isolated for its
// whole lifetime: the engine's writer can publish freely, and a pinned
// session keeps answering from the epoch it saw at (sync) time — the
// shared_ptr pin keeps that epoch alive even after it rotates out of the
// engine's retained ring.
//
// Thread-safety: a Session is a per-caller object (per connection, per
// repl) and is NOT internally synchronized; the engine underneath is
// safe for any number of concurrent sessions.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kb/kb_engine.h"
#include "sexpr/sexpr.h"
#include "util/result.h"

namespace classic {

class Session {
 public:
  /// Pins `engine`'s current epoch; unpinned if none is published yet.
  /// `engine` must outlive the session.
  explicit Session(KbEngine* engine);

  /// The pinned epoch number (0 = unpinned: nothing published yet).
  uint64_t epoch() const { return pinned_ ? pinned_->epoch() : 0; }

  /// True once the session has an epoch to answer from.
  bool pinned() const { return pinned_ != nullptr; }

  /// \brief Re-pins to the engine's current epoch; returns its number.
  Result<uint64_t> Sync();

  /// \brief Pins a retained historical epoch (session-level as-of).
  Result<uint64_t> PinEpoch(uint64_t epoch);

  /// \brief Captures `source`'s current state as the next epoch of the
  /// engine's lineage (KbEngine::PublishFrom) and pins it.
  Result<uint64_t> Publish(KnowledgeBase& source);

  /// Epoch numbers currently retained for as-of serving (oldest first).
  std::vector<uint64_t> RetainedEpochs() const;

  /// \brief Serves one request against the pinned epoch (or the request's
  /// own as_of_epoch). Unpinned sessions answer NotFound.
  QueryAnswer Serve(const QueryRequest& request) const;

  /// \brief Serves a batch against the pinned epoch, fanned across the
  /// engine's pool exactly like KbEngine::QueryBatch (answer i matches
  /// request i; as_of_epoch requests are routed per-request).
  std::vector<QueryAnswer> ServeBatch(const std::vector<QueryRequest>& requests,
                                      size_t num_threads = 0) const;

  KbEngine& engine() const { return *engine_; }

  /// \brief Maps one read-only operator-language form to the engine
  /// request it corresponds to. This is the shared parsing surface of
  /// the repl's (as-of E <form>) and the wire protocol's request frames;
  /// both the canonical form `(request <kind> "<text>" [epoch] [explain])`
  /// and the human forms are accepted:
  ///
  ///   (ask <query>) (ask-possible <query>) (ask-description <query>)
  ///   (select (vars...) atoms...) (instances NAME) (msc Ind)
  ///   (describe Ind) (explain <any of the above>)
  static Result<QueryRequest> RequestFromForm(const sexpr::Value& form);

  /// \brief Parses request text (one form) and maps it via
  /// RequestFromForm.
  static Result<QueryRequest> ParseRequest(const std::string& text);

 private:
  KbEngine* engine_;
  SnapshotPtr pinned_;
};

}  // namespace classic
