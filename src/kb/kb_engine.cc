#include "kb/kb_engine.h"

#include <thread>
#include <utility>

#include "obs/histogram.h"
#include "obs/trace.h"
#include "query/describe.h"
#include "query/introspect.h"
#include "query/path_query.h"
#include "query/planner.h"
#include "query/query.h"
#include "util/string_util.h"

namespace classic {

namespace {

std::vector<std::string> Names(const KnowledgeBase& kb,
                               const std::vector<IndId>& ids) {
  std::vector<std::string> out;
  out.reserve(ids.size());
  for (IndId i : ids) out.push_back(kb.vocab().IndividualName(i));
  return out;
}

Result<IndId> FindIndByName(const KnowledgeBase& kb, const std::string& name) {
  Symbol sym = kb.vocab().symbols().Lookup(name);
  if (sym == kNoSymbol) {
    return Status::NotFound(StrCat("unknown individual: ", name));
  }
  Result<IndId> ind = kb.vocab().FindIndividual(sym);
  // The vocabulary is shared across epochs (COW publication), so a name
  // interned by the live master after this epoch froze still resolves
  // here. Visibility is the epoch's frozen bound, not the directory.
  if (ind.ok() && *ind >= kb.num_visible_individuals()) {
    return Status::NotFound(StrCat("unknown individual: ", name));
  }
  return ind;
}

/// Total worker-thread count backing a serving concurrency of `total`
/// threads (the batch caller participates, so the pool holds one fewer).
size_t PoolWorkers(size_t total) { return total > 0 ? total - 1 : 0; }

size_t ResolveTotalThreads(size_t requested) {
  if (requested > 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// Escapes the canonical-form separator (0x1f) and the escape character
/// itself, so a value that happens to contain either byte cannot fake a
/// value boundary. Rendered names never contain 0x1f today, but host
/// values and error messages are arbitrary strings.
void AppendEscaped(const std::string& v, std::string* out) {
  for (char c : v) {
    if (c == '\\') {
      out->append("\\\\");
    } else if (c == '\x1f') {
      out->append("\\u001f");
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

QueryRequest QueryRequest::Ask(std::string query) {
  return {Kind::kAsk, std::move(query)};
}
QueryRequest QueryRequest::AskPossible(std::string query) {
  return {Kind::kAskPossible, std::move(query)};
}
QueryRequest QueryRequest::AskDescription(std::string query) {
  return {Kind::kAskDescription, std::move(query)};
}
QueryRequest QueryRequest::PathQuery(std::string select_expr) {
  return {Kind::kPathQuery, std::move(select_expr)};
}
QueryRequest QueryRequest::DescribeIndividual(std::string individual) {
  return {Kind::kDescribeIndividual, std::move(individual)};
}
QueryRequest QueryRequest::MostSpecificConcepts(std::string individual) {
  return {Kind::kMostSpecificConcepts, std::move(individual)};
}
QueryRequest QueryRequest::InstancesOf(std::string concept_name) {
  return {Kind::kInstancesOf, std::move(concept_name)};
}

sexpr::Value QueryRequest::ToSexpr() const {
  std::vector<sexpr::Value> items;
  items.push_back(sexpr::Value::MakeSymbol("request"));
  items.push_back(sexpr::Value::MakeSymbol(QueryKindName(kind)));
  items.push_back(sexpr::Value::MakeString(text));
  if (as_of_epoch != 0) {
    items.push_back(
        sexpr::Value::MakeInteger(static_cast<int64_t>(as_of_epoch)));
  }
  if (explain) {
    items.push_back(sexpr::Value::MakeSymbol("explain"));
  }
  return sexpr::Value::MakeList(std::move(items));
}

std::string QueryRequest::ToWire() const { return ToSexpr().ToString(); }

Result<QueryRequest> QueryRequest::FromSexpr(const sexpr::Value& v) {
  if (!v.HasHead("request") || v.size() < 3 || v.size() > 5) {
    return Status::InvalidArgument(
        StrCat("not a request form: ", v.ToString()));
  }
  if (!v.at(1).IsSymbol()) {
    return Status::InvalidArgument(
        StrCat("request kind must be a symbol: ", v.ToString()));
  }
  std::optional<Kind> kind = QueryKindFromName(v.at(1).text());
  if (!kind) {
    return Status::InvalidArgument(
        StrCat("unknown request kind: ", v.at(1).text()));
  }
  if (!v.at(2).IsString()) {
    return Status::InvalidArgument(
        StrCat("request text must be a string: ", v.ToString()));
  }
  QueryRequest out{*kind, v.at(2).text()};
  // Optional trailing arguments: a positive-integer epoch, then the
  // `explain` symbol — in that order only.
  size_t next = 3;
  if (next < v.size() && v.at(next).IsInteger()) {
    if (v.at(next).integer() <= 0) {
      return Status::InvalidArgument(
          StrCat("request epoch must be a positive integer: ", v.ToString()));
    }
    out.as_of_epoch = static_cast<uint64_t>(v.at(next).integer());
    ++next;
  }
  if (next < v.size() && v.at(next).IsSymbolNamed("explain")) {
    out.explain = true;
    ++next;
  }
  if (next != v.size()) {
    return Status::InvalidArgument(StrCat(
        "request tail must be [<epoch>] [explain]: ", v.ToString()));
  }
  return out;
}

Result<QueryRequest> QueryRequest::FromWire(const std::string& text) {
  CLASSIC_ASSIGN_OR_RETURN(sexpr::Value v, sexpr::Parse(text));
  return FromSexpr(v);
}

sexpr::Value QueryAnswer::ToSexpr() const {
  std::vector<sexpr::Value> values_list;
  values_list.reserve(values.size());
  for (const std::string& v : values) {
    values_list.push_back(sexpr::Value::MakeString(v));
  }
  std::vector<sexpr::Value> items;
  items.push_back(sexpr::Value::MakeSymbol("answer"));
  items.push_back(sexpr::Value::MakeSymbol(StatusCodeName(status.code())));
  items.push_back(sexpr::Value::MakeString(status.message()));
  items.push_back(sexpr::Value::MakeList(std::move(values_list)));
  return sexpr::Value::MakeList(std::move(items));
}

std::string QueryAnswer::ToWire() const { return ToSexpr().ToString(); }

Result<QueryAnswer> QueryAnswer::FromSexpr(const sexpr::Value& v) {
  if (!v.HasHead("answer") || v.size() != 4 || !v.at(1).IsSymbol() ||
      !v.at(2).IsString() || !v.at(3).IsList()) {
    return Status::InvalidArgument(
        StrCat("not an answer form: ", v.ToString()));
  }
  QueryAnswer out;
  const StatusCode code = StatusCodeFromName(v.at(1).text());
  if (code != StatusCode::kOk) {
    out.status = Status(code, v.at(2).text());
  }
  out.values.reserve(v.at(3).size());
  for (const sexpr::Value& item : v.at(3).items()) {
    if (!item.IsString()) {
      return Status::InvalidArgument(
          StrCat("answer values must be strings: ", v.ToString()));
    }
    out.values.push_back(item.text());
  }
  return out;
}

Result<QueryAnswer> QueryAnswer::FromWire(const std::string& text) {
  CLASSIC_ASSIGN_OR_RETURN(sexpr::Value v, sexpr::Parse(text));
  return FromSexpr(v);
}

obs::Op ToObsOp(QueryRequest::Kind kind) {
  // The first seven Op values mirror Kind, in order (static_asserts keep
  // the two enums aligned).
  static_assert(static_cast<uint32_t>(QueryRequest::Kind::kAsk) ==
                static_cast<uint32_t>(obs::Op::kAsk));
  static_assert(static_cast<uint32_t>(QueryRequest::Kind::kInstancesOf) ==
                static_cast<uint32_t>(obs::Op::kInstancesOf));
  return static_cast<obs::Op>(static_cast<uint32_t>(kind));
}

const char* QueryKindName(QueryRequest::Kind kind) {
  return obs::OpName(ToObsOp(kind));
}

std::optional<QueryRequest::Kind> QueryKindFromName(std::string_view name) {
  std::optional<obs::Op> op = obs::OpFromName(name);
  if (!op || *op > obs::Op::kInstancesOf) return std::nullopt;
  return static_cast<QueryRequest::Kind>(static_cast<uint32_t>(*op));
}

std::string QueryAnswer::Canonical() const {
  std::string out = status.ok()
                        ? std::string("OK")
                        : StrCat(StatusCodeName(status.code()), ": ",
                                 status.message());
  for (const std::string& v : values) {
    out.push_back('\x1f');  // unit separator marks each value boundary
    AppendEscaped(v, &out);
  }
  return out;
}

KbEngine::KbEngine() : KbEngine(Options()) {}

KbEngine::KbEngine(Options options)
    : master_(std::make_unique<KnowledgeBase>()),
      pool_(PoolWorkers(ResolveTotalThreads(options.num_threads))) {}

KbEngine::~KbEngine() = default;

void KbEngine::SetParallelMutation(bool enabled) {
  parallel_mutation_ = enabled;
  master_->SetPropagationPool(enabled ? &pool_ : nullptr);
}

SnapshotPtr KbEngine::Reset(std::unique_ptr<KnowledgeBase> master) {
  master_ = std::move(master);
  master_->SetPropagationPool(parallel_mutation_ ? &pool_ : nullptr);
  {
    // A new master starts a new lineage; epochs retained from the old
    // one must not answer as-of queries for it.
    std::lock_guard<std::mutex> lock(current_mutex_);
    retained_.clear();
  }
  return Publish();
}

SnapshotPtr KbEngine::ResetFrom(const KnowledgeBase& source) {
  return Reset(source.Clone());
}

SnapshotPtr KbEngine::PublishFrom(KnowledgeBase& source) {
  // The writer mutated `source` (not our master), so the copy-down work
  // for this epoch's delta accrued on its counters; drain them here so
  // the fresh clone's zeroed counters don't report the epoch as free.
  CLASSIC_OBS_COUNT_N(kPublishChunksCopied, source.TakeCowCopyCount());
  master_ = source.Clone();
  master_->SetPropagationPool(parallel_mutation_ ? &pool_ : nullptr);
  return Publish();
}

Status KbEngine::Mutate(const std::function<Status(KnowledgeBase*)>& fn) {
#if CLASSIC_OBS
  obs::TraceSpan span("mutate");
  const uint64_t start = obs::MonotonicNanos();
#endif
  CLASSIC_RETURN_NOT_OK(fn(master_.get()));
  Publish();
#if CLASSIC_OBS
  obs::RecordLatency(obs::Op::kMutate, obs::MonotonicNanos() - start);
  obs::FlushLocalCounters();
#endif
  return Status::OK();
}

SnapshotPtr KbEngine::Publish() {
#if CLASSIC_OBS
  obs::TraceSpan span("publish");
  const uint64_t start = obs::MonotonicNanos();
#endif
  CLASSIC_OBS_COUNT(kEpochPublishes);
  // Drain copy counters accumulated by writer mutations since the last
  // publish BEFORE forking, so the count reported for this epoch is
  // exactly the chunks path-copied to assemble its delta.
  CLASSIC_OBS_COUNT_N(kPublishChunksCopied, master_->TakeCowCopyCount());
  std::unique_ptr<KnowledgeBase> clone = master_->Clone();
  clone->FreezeVisibleIndividuals();
  CLASSIC_OBS_COUNT_N(kPublishBytesShared, clone->ApproxSharedCowBytes());
  const uint64_t e = epoch_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto snap = std::make_shared<const KbSnapshot>(
      std::unique_ptr<const KnowledgeBase>(std::move(clone)), e);
  {
    std::lock_guard<std::mutex> lock(current_mutex_);
    current_ = snap;
    retained_.push_back(snap);
    if (retained_.size() > kRetainedEpochs) {
      retained_.erase(retained_.begin());
    }
  }
#if CLASSIC_OBS
  obs::RecordLatency(obs::Op::kPublish, obs::MonotonicNanos() - start);
  obs::FlushLocalCounters();
#endif
  return snap;
}

SnapshotPtr KbEngine::snapshot() const {
  CLASSIC_OBS_COUNT(kSnapshotAcquisitions);
  std::lock_guard<std::mutex> lock(current_mutex_);
  return current_;
}

uint64_t KbEngine::epoch() const {
  SnapshotPtr s = snapshot();
  return s ? s->epoch() : 0;
}

SnapshotPtr KbEngine::SnapshotAt(uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(current_mutex_);
  for (const SnapshotPtr& s : retained_) {
    if (s->epoch() == epoch) return s;
  }
  return nullptr;
}

std::vector<uint64_t> KbEngine::RetainedEpochs() const {
  std::lock_guard<std::mutex> lock(current_mutex_);
  std::vector<uint64_t> out;
  out.reserve(retained_.size());
  for (const SnapshotPtr& s : retained_) out.push_back(s->epoch());
  return out;
}

QueryAnswer KbEngine::ServeQuery(const KnowledgeBase& kb,
                                 const QueryRequest& request) {
#if CLASSIC_OBS
  obs::TraceSpan span(QueryKindName(request.kind));
  obs::CounterDeltaScope window;
  const uint64_t start = obs::MonotonicNanos();
#endif
  QueryAnswer out = ServeQueryImpl(kb, request);
#if CLASSIC_OBS
  CLASSIC_OBS_COUNT(kQueriesServed);
  out.stats.counters = window.Deltas();
  out.stats.wall_nanos = obs::MonotonicNanos() - start;
  obs::RecordLatency(ToObsOp(request.kind), out.stats.wall_nanos);
#endif
  return out;
}

obs::MetricsSnapshot KbEngine::MetricsSnapshot() const {
  return obs::SnapshotMetrics();
}

QueryAnswer KbEngine::ServeQueryImpl(const KnowledgeBase& kb,
                                     const QueryRequest& request) {
  QueryAnswer out;
  // Filled per kind when the request asks for an explanation. Requests
  // that fail (parse errors, unknown names) return before the plan is
  // prepended — a failed query has no plan.
  planner::PlanNode plan;
  switch (request.kind) {
    case QueryRequest::Kind::kAsk: {
      Result<Query> q = ParseQueryString(request.text, &kb.vocab().symbols());
      if (!q.ok()) {
        out.status = q.status();
        return out;
      }
      Result<RetrievalResult> r = planner::RetrieveQuery(
          kb, *q, request.explain ? &plan : nullptr);
      if (!r.ok()) {
        out.status = r.status();
        return out;
      }
      out.values = Names(kb, r->answers);
      break;
    }
    case QueryRequest::Kind::kAskPossible: {
      Result<Query> q = ParseQueryString(request.text, &kb.vocab().symbols());
      if (!q.ok()) {
        out.status = q.status();
        return out;
      }
      Result<std::vector<IndId>> ids = RetrievePossible(kb, *q);
      if (!ids.ok()) {
        out.status = ids.status();
        return out;
      }
      out.values = Names(kb, *ids);
      if (request.explain) {
        // Possible-set semantics (not provably excluded) admit no
        // complete index source; the scan over every visible individual
        // is the only access path.
        plan = planner::Node("possible-scan", {},
                             kb.num_visible_individuals());
        plan.act = ids->size();
      }
      break;
    }
    case QueryRequest::Kind::kAskDescription: {
      Result<Query> q = ParseQueryString(request.text, &kb.vocab().symbols());
      if (!q.ok()) {
        out.status = q.status();
        return out;
      }
      Result<DescriptionAnswer> a = AskDescription(kb, *q);
      if (!a.ok()) {
        out.status = a.status();
        return out;
      }
      out.values.push_back(a->description->ToString(kb.vocab().symbols()));
      for (const std::string& m : a->msc_names) out.values.push_back(m);
      if (request.explain) {
        // The intensional answer classifies the query concept; the child
        // shows the access path an extensional retrieval would take.
        plan = planner::Node("ask-description", {}, 1);
        plan.act = 1;
        Result<NormalFormPtr> nf =
            kb.normalizer().NormalizeConcept(q->level_constraints[0]);
        if (nf.ok()) plan.children.push_back(planner::PlanConcept(kb, **nf));
      }
      break;
    }
    case QueryRequest::Kind::kPathQuery: {
      Result<PathQuery> q = ParsePathQueryString(request.text, kb);
      if (!q.ok()) {
        out.status = q.status();
        return out;
      }
      Result<PathQueryResult> r = EvaluatePathQuery(kb, *q);
      if (!r.ok()) {
        out.status = r.status();
        return out;
      }
      for (const auto& row : PathQueryRowNames(kb, *r)) {
        std::string line;
        for (size_t c = 0; c < row.size(); ++c) {
          if (c > 0) line.push_back(' ');
          line.append(row[c]);
        }
        out.values.push_back(std::move(line));
      }
      if (request.explain) {
        // One child per conjunct: concept atoms carry the access path the
        // planner would choose to seed their variable's domain; role
        // atoms are joined over the known filler graph.
        plan = planner::Node("path-query");
        plan.act = r->rows.size();
        for (const PathAtom& atom : q->atoms) {
          if (atom.kind == PathAtom::Kind::kConcept) {
            plan.children.push_back(
                planner::PlanConcept(kb, *atom.concept_nf));
          } else {
            plan.children.push_back(planner::Node(
                "role-join",
                {kb.vocab().symbols().Name(kb.vocab().role(atom.role).name)}));
          }
        }
      }
      break;
    }
    case QueryRequest::Kind::kDescribeIndividual: {
      Result<IndId> ind = FindIndByName(kb, request.text);
      if (!ind.ok()) {
        out.status = ind.status();
        return out;
      }
      out.values.push_back(kb.state(*ind).derived->ToString(kb.vocab()));
      if (request.explain) {
        plan = planner::Node("describe-individual", {request.text}, 1);
        plan.act = 1;
      }
      break;
    }
    case QueryRequest::Kind::kMostSpecificConcepts: {
      Result<IndId> ind = FindIndByName(kb, request.text);
      if (!ind.ok()) {
        out.status = ind.status();
        return out;
      }
      Result<std::vector<std::string>> msc = IndMostSpecificConcepts(kb, *ind);
      if (!msc.ok()) {
        out.status = msc.status();
        return out;
      }
      out.values = std::move(*msc);
      if (request.explain) {
        plan = planner::Node("most-specific-concepts", {request.text}, 1);
        plan.act = out.values.size();
      }
      break;
    }
    case QueryRequest::Kind::kInstancesOf: {
      Symbol sym = kb.vocab().symbols().Lookup(request.text);
      if (sym == kNoSymbol) {
        out.status = Status::NotFound(
            StrCat("unknown concept: ", request.text));
        return out;
      }
      Result<ConceptId> cid = kb.vocab().FindConcept(sym);
      if (!cid.ok()) {
        out.status = cid.status();
        return out;
      }
      Result<NodeId> node = kb.taxonomy().NodeOf(*cid);
      if (!node.ok()) {
        out.status = node.status();
        return out;
      }
      const std::set<IndId>& inst = kb.Instances(*node);
      out.values = Names(kb, std::vector<IndId>(inst.begin(), inst.end()));
      if (request.explain) {
        // The extension of a named concept is maintained incrementally;
        // answering is a direct read of the taxonomy node's instance set.
        plan = planner::Node("instances-of", {request.text}, inst.size());
        plan.act = inst.size();
      }
      break;
    }
    default:
      out.status = Status::InvalidArgument("unknown query kind");
      return out;
  }
  if (request.explain) {
    out.values.insert(out.values.begin(),
                      planner::RenderPlan(QueryKindName(request.kind), plan));
  }
  return out;
}

std::vector<QueryAnswer> KbEngine::QueryBatch(
    const std::vector<QueryRequest>& requests, size_t num_threads) {
  SnapshotPtr snap = snapshot();
  if (!snap) {
    std::vector<QueryAnswer> out(requests.size());
    for (QueryAnswer& a : out) {
      a.status = Status::NotFound("no epoch published yet");
    }
    return out;
  }
  return QueryBatchOn(*snap, requests, num_threads);
}

std::vector<QueryAnswer> KbEngine::QueryBatchOn(
    const KbSnapshot& snap, const std::vector<QueryRequest>& requests,
    size_t num_threads) {
  std::vector<QueryAnswer> out(requests.size());
  auto serve = [&](size_t i) {
    const QueryRequest& req = requests[i];
    if (req.as_of_epoch != 0 && req.as_of_epoch != snap.epoch()) {
      SnapshotPtr old = SnapshotAt(req.as_of_epoch);
      if (!old) {
        out[i].status = Status::NotFound(
            StrCat("epoch ", req.as_of_epoch,
                   " is not retained (as-of window is the last ",
                   kRetainedEpochs, " epochs)"));
        return;
      }
      out[i] = ServeQuery(old->kb(), req);  // `old` keeps the epoch alive
      return;
    }
    out[i] = ServeQuery(snap.kb(), req);
  };
  if (num_threads == 1) {
    for (size_t i = 0; i < requests.size(); ++i) serve(i);
  } else if (num_threads == 0) {
    pool_.ParallelFor(requests.size(), serve);
  } else {
    ThreadPool batch_pool(PoolWorkers(num_threads));
    batch_pool.ParallelFor(requests.size(), serve);
  }
  return out;
}

}  // namespace classic
