#include "taxonomy/taxonomy.h"

#include <algorithm>
#include <deque>

#include "subsume/subsume.h"
#include "util/string_util.h"

namespace classic {

namespace {

/// Memoizing wrapper around one direction of subsumption for a single
/// classification pass.
class SubsumptionCache {
 public:
  SubsumptionCache(const std::vector<NormalFormPtr>& forms,
                   const NormalForm& target)
      : forms_(forms), target_(target) {}

  /// node's form subsumes target?
  bool NodeSubsumesTarget(NodeId node) {
    auto [it, inserted] = up_.try_emplace(node, false);
    if (inserted) {
      ++tests_;
      it->second = Subsumes(*forms_[node], target_);
    }
    return it->second;
  }

  /// target subsumes node's form?
  bool TargetSubsumesNode(NodeId node) {
    auto [it, inserted] = down_.try_emplace(node, false);
    if (inserted) {
      ++tests_;
      it->second = Subsumes(target_, *forms_[node]);
    }
    return it->second;
  }

  size_t tests() const { return tests_; }

 private:
  const std::vector<NormalFormPtr>& forms_;
  const NormalForm& target_;
  std::map<NodeId, bool> up_;
  std::map<NodeId, bool> down_;
  size_t tests_ = 0;
};

}  // namespace

Classification Taxonomy::Classify(const NormalForm& nf) const {
  Classification out;
  std::vector<NormalFormPtr> forms;
  forms.reserve(nodes_.size());
  for (const auto& n : nodes_) forms.push_back(n.nf);
  SubsumptionCache cache(forms, nf);

  // --- Phase 1: most-specific subsumers (top-down). The set of subsumers
  // is upward-closed, so a node is worth visiting only through a subsuming
  // parent chain.
  std::set<NodeId> subsumers;
  {
    std::deque<NodeId> queue(roots_.begin(), roots_.end());
    std::set<NodeId> seen(roots_.begin(), roots_.end());
    while (!queue.empty()) {
      NodeId node = queue.front();
      queue.pop_front();
      if (!cache.NodeSubsumesTarget(node)) continue;
      subsumers.insert(node);
      for (NodeId child : nodes_[node].children) {
        if (seen.insert(child).second) queue.push_back(child);
      }
    }
    for (NodeId node : subsumers) {
      bool most_specific = true;
      for (NodeId child : nodes_[node].children) {
        if (subsumers.count(child) > 0) {
          most_specific = false;
          break;
        }
      }
      if (most_specific) out.parents.push_back(node);
    }
    std::sort(out.parents.begin(), out.parents.end());
  }

  // Equivalence: a most-specific subsumer that the target also subsumes.
  for (NodeId p : out.parents) {
    if (cache.TargetSubsumesNode(p)) {
      out.equivalent = p;
      out.children.assign(nodes_[p].children.begin(),
                          nodes_[p].children.end());
      out.subsumption_tests = cache.tests();
      return out;
    }
  }

  // --- Phase 2: most-general subsumees (downward from the parents). Every
  // subsumee is a descendant of all parents, so the search starts at the
  // parents' children. A failing node's descendants may still pass, so
  // failures recurse; successes stop (their descendants are subsumees but
  // not most general).
  std::set<NodeId> subsumees;
  {
    std::deque<NodeId> queue;
    std::set<NodeId> seen;
    if (out.parents.empty()) {
      // The target sits directly under THING: every root is a candidate
      // subsumee.
      for (NodeId r : roots_) {
        if (seen.insert(r).second) queue.push_back(r);
      }
    }
    for (NodeId p : out.parents) {
      for (NodeId c : nodes_[p].children) {
        if (seen.insert(c).second) queue.push_back(c);
      }
    }
    while (!queue.empty()) {
      NodeId node = queue.front();
      queue.pop_front();
      if (cache.TargetSubsumesNode(node)) {
        subsumees.insert(node);
        continue;
      }
      for (NodeId child : nodes_[node].children) {
        if (seen.insert(child).second) queue.push_back(child);
      }
    }
    // Keep only nodes with no subsumed strict ancestor among the found
    // set; because we stop descending at successes, found nodes are
    // incomparable unless reachable by different paths — filter to be
    // safe.
    for (NodeId node : subsumees) {
      bool most_general = true;
      for (NodeId parent : nodes_[node].parents) {
        if (subsumees.count(parent) > 0) {
          most_general = false;
          break;
        }
      }
      if (most_general) out.children.push_back(node);
    }
    std::sort(out.children.begin(), out.children.end());
  }

  out.subsumption_tests = cache.tests();
  return out;
}

Result<NodeId> Taxonomy::Insert(ConceptId cid) {
  const ConceptInfo& info = vocab_->concept_info(cid);
  if (info.normal_form == nullptr) {
    return Status::Internal("concept registered without a normal form");
  }
  if (node_of_concept_.count(cid) > 0) {
    return Status::AlreadyExists(
        StrCat("concept already classified: ",
               vocab_->symbols().Name(info.name)));
  }

  Classification cls = Classify(*info.normal_form);
  total_insert_tests_ += cls.subsumption_tests;

  if (cls.equivalent) {
    NodeId node = *cls.equivalent;
    nodes_[node].synonyms.push_back(cid);
    node_of_concept_.emplace(cid, node);
    return node;
  }

  NodeId node = static_cast<NodeId>(nodes_.size());
  nodes_.push_back({{cid}, info.normal_form, {}, {}});
  node_of_concept_.emplace(cid, node);

  // Ancestor index: the new node's ancestors are its parents plus theirs;
  // every (transitive) descendant gains the new node (the rest of their
  // sets is unchanged — they already sat below the parents).
  {
    std::set<NodeId> anc;
    for (NodeId p : cls.parents) {
      anc.insert(p);
      anc.insert(ancestor_sets_[p].begin(), ancestor_sets_[p].end());
    }
    ancestor_sets_.push_back(std::move(anc));
    std::deque<NodeId> queue(cls.children.begin(), cls.children.end());
    std::set<NodeId> seen(cls.children.begin(), cls.children.end());
    while (!queue.empty()) {
      NodeId d = queue.front();
      queue.pop_front();
      ancestor_sets_[d].insert(node);
      for (NodeId c : nodes_[d].children) {
        if (seen.insert(c).second) queue.push_back(c);
      }
    }
  }

  // Splice between parents and children: drop parent->child edges that the
  // new node makes transitive.
  for (NodeId p : cls.parents) {
    for (NodeId c : cls.children) {
      nodes_[p].children.erase(c);
      nodes_[c].parents.erase(p);
    }
  }
  for (NodeId p : cls.parents) {
    nodes_[p].children.insert(node);
    nodes_[node].parents.insert(p);
  }
  for (NodeId c : cls.children) {
    nodes_[c].parents.insert(node);
    nodes_[node].children.insert(c);
    // The child may have been a root (no named parents); it no longer is.
    roots_.erase(c);
  }
  if (cls.parents.empty()) roots_.insert(node);
  return node;
}

Result<NodeId> Taxonomy::NodeOf(ConceptId cid) const {
  auto it = node_of_concept_.find(cid);
  if (it == node_of_concept_.end()) {
    return Status::NotFound(
        StrCat("concept not in taxonomy: ",
               vocab_->symbols().Name(vocab_->concept_info(cid).name)));
  }
  return it->second;
}

std::vector<NodeId> Taxonomy::Ancestors(NodeId node) const {
  return std::vector<NodeId>(ancestor_sets_[node].begin(),
                             ancestor_sets_[node].end());
}

std::vector<NodeId> Taxonomy::Descendants(NodeId node) const {
  std::set<NodeId> seen;
  std::deque<NodeId> queue(nodes_[node].children.begin(),
                           nodes_[node].children.end());
  for (NodeId c : queue) seen.insert(c);
  std::vector<NodeId> out;
  while (!queue.empty()) {
    NodeId n = queue.front();
    queue.pop_front();
    out.push_back(n);
    for (NodeId c : nodes_[n].children) {
      if (seen.insert(c).second) queue.push_back(c);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace classic
