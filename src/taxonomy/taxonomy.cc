#include "taxonomy/taxonomy.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "desc/description.h"
#include "obs/metrics.h"
#include "subsume/subsume.h"
#include "util/string_util.h"

namespace classic {

namespace {

/// Named concepts conjoined at the top level of a definition subsume the
/// definition by construction (the normal form is their meet, further
/// tightened) — they are "told" subsumers and need no structural test.
/// PRIMITIVE/DISJOINT-PRIMITIVE wrap a base description the same way.
void CollectToldSubsumers(const Description& d, const Vocabulary& vocab,
                          const CowMap<ConceptId, NodeId>& node_of_concept,
                          std::vector<NodeId>* out) {
  switch (d.kind()) {
    case DescKind::kConceptName: {
      Result<ConceptId> cid = vocab.FindConcept(d.name());
      if (!cid.ok()) return;
      const NodeId* node = node_of_concept.Find(*cid);
      if (node != nullptr) out->push_back(*node);
      return;
    }
    case DescKind::kAnd:
      for (const DescPtr& c : d.conjuncts()) {
        CollectToldSubsumers(*c, vocab, node_of_concept, out);
      }
      return;
    case DescKind::kPrimitive:
    case DescKind::kDisjointPrimitive:
      if (d.child()) {
        CollectToldSubsumers(*d.child(), vocab, node_of_concept, out);
      }
      return;
    default:
      return;
  }
}

}  // namespace

Classification Taxonomy::Classify(const NormalForm& nf) const {
  return ClassifyInternal(nf, nullptr);
}

Classification Taxonomy::Classify(
    const NormalForm& nf, const std::vector<NodeId>& told_subsumers) const {
  return ClassifyInternal(nf, &told_subsumers);
}

Classification Taxonomy::ClassifyInternal(
    const NormalForm& nf, const std::vector<NodeId>* told_subsumers) const {
  CLASSIC_OBS_COUNT(kClassifications);
  Classification out;
  size_t tests = 0;

  // Per-call verdict views over the persistent index. The map keeps each
  // node's verdict at hand for the DAG sweeps; the persistent index makes
  // verdicts survive this call (and supplies them to the next one).
  std::unordered_map<NodeId, bool> up;    // node's form subsumes nf?
  std::unordered_map<NodeId, bool> down;  // nf subsumes node's form?

  auto decide = [&](const NormalForm& general, const NormalForm& specific)
      -> bool {
    const NfId gid = general.interned_id();
    const NfId sid = specific.interned_id();
    if (gid != kNoNfId && gid == sid) return true;
    if (gid != kNoNfId && sid != kNoNfId) {
      if (std::optional<bool> cached = subsume_index_->Lookup(gid, sid)) {
        CLASSIC_OBS_COUNT(kSubsumptionMemoHits);
        return *cached;
      }
    }
    ++tests;
    return Subsumes(general, specific, subsume_index_.get());
  };
  auto node_subsumes_target = [&](NodeId node) {
    auto [it, inserted] = up.try_emplace(node, false);
    if (inserted) it->second = decide(*nodes_[node].nf, nf);
    return it->second;
  };
  auto target_subsumes_node = [&](NodeId node) {
    auto [it, inserted] = down.try_emplace(node, false);
    if (inserted) it->second = decide(nf, *nodes_[node].nf);
    return it->second;
  };

  // Told subsumers (and, transitively, their ancestors) subsume the
  // target by construction: mark them proven so the top-down sweep walks
  // straight through them without testing.
  if (told_subsumers != nullptr) {
    for (NodeId t : *told_subsumers) {
      if (t >= nodes_.size()) continue;
      up[t] = true;
      ancestor_sets_[t].ForEach(
          [&up](size_t a) { up[static_cast<NodeId>(a)] = true; });
    }
  }

  // --- Phase 1: most-specific subsumers (top-down). The set of subsumers
  // is upward-closed, so a node is worth visiting only through a subsuming
  // parent chain.
  std::set<NodeId> subsumers;
  {
    std::deque<NodeId> queue(roots_.begin(), roots_.end());
    std::set<NodeId> seen(roots_.begin(), roots_.end());
    while (!queue.empty()) {
      NodeId node = queue.front();
      queue.pop_front();
      if (!node_subsumes_target(node)) continue;
      subsumers.insert(node);
      for (NodeId child : nodes_[node].children) {
        if (seen.insert(child).second) queue.push_back(child);
      }
    }
    for (NodeId node : subsumers) {
      bool most_specific = true;
      for (NodeId child : nodes_[node].children) {
        if (subsumers.count(child) > 0) {
          most_specific = false;
          break;
        }
      }
      if (most_specific) out.parents.push_back(node);
    }
    std::sort(out.parents.begin(), out.parents.end());
  }

  // Equivalence: a most-specific subsumer that the target also subsumes.
  for (NodeId p : out.parents) {
    if (target_subsumes_node(p)) {
      out.equivalent = p;
      out.children.assign(nodes_[p].children.begin(),
                          nodes_[p].children.end());
      out.subsumption_tests = tests;
      return out;
    }
  }

  // --- Phase 2: most-general subsumees (downward from the parents). Every
  // subsumee is a descendant of all parents, so the search starts at the
  // parents' children. A failing node's descendants may still pass, so
  // failures recurse; successes stop (their descendants are subsumees but
  // not most general).
  std::set<NodeId> subsumees;
  {
    std::deque<NodeId> queue;
    std::set<NodeId> seen;
    if (out.parents.empty()) {
      // The target sits directly under THING: every root is a candidate
      // subsumee.
      for (NodeId r : roots_) {
        if (seen.insert(r).second) queue.push_back(r);
      }
    }
    for (NodeId p : out.parents) {
      for (NodeId c : nodes_[p].children) {
        if (seen.insert(c).second) queue.push_back(c);
      }
    }
    while (!queue.empty()) {
      NodeId node = queue.front();
      queue.pop_front();
      if (target_subsumes_node(node)) {
        subsumees.insert(node);
        continue;
      }
      for (NodeId child : nodes_[node].children) {
        if (seen.insert(child).second) queue.push_back(child);
      }
    }
    // Keep only nodes with no subsumed strict ancestor among the found
    // set; because we stop descending at successes, found nodes are
    // incomparable unless reachable by different paths — filter to be
    // safe.
    for (NodeId node : subsumees) {
      bool most_general = true;
      for (NodeId parent : nodes_[node].parents) {
        if (subsumees.count(parent) > 0) {
          most_general = false;
          break;
        }
      }
      if (most_general) out.children.push_back(node);
    }
    std::sort(out.children.begin(), out.children.end());
  }

  out.subsumption_tests = tests;
  return out;
}

Result<NodeId> Taxonomy::Insert(ConceptId cid) {
  const ConceptInfo& info = vocab_->concept_info(cid);
  if (info.normal_form == nullptr) {
    return Status::Internal("concept registered without a normal form");
  }
  if (node_of_concept_.Find(cid) != nullptr) {
    return Status::AlreadyExists(
        StrCat("concept already classified: ",
               vocab_->symbols().Name(info.name)));
  }

  std::vector<NodeId> told;
  if (info.source != nullptr) {
    CollectToldSubsumers(*info.source, *vocab_, node_of_concept_, &told);
  }
  Classification cls = Classify(*info.normal_form, told);
  total_insert_tests_ += cls.subsumption_tests;

  if (cls.equivalent) {
    NodeId node = *cls.equivalent;
    nodes_.Mutable(node).synonyms.push_back(cid);
    node_of_concept_.Mutable(cid) = node;
    return node;
  }

  NodeId node = static_cast<NodeId>(nodes_.size());
  nodes_.push_back({{cid}, info.normal_form, {}, {}});
  node_of_concept_.Mutable(cid) = node;

  // Ancestor index: the new node's ancestors are its parents plus theirs
  // (a couple of word-parallel unions); every (transitive) descendant
  // gains the new node's bit (the rest of their sets is unchanged — they
  // already sat below the parents).
  {
    DynamicBitset anc;
    for (NodeId p : cls.parents) {
      anc.Set(p);
      anc.OrWith(ancestor_sets_[p]);
    }
    ancestor_sets_.push_back(std::move(anc));
    std::deque<NodeId> queue(cls.children.begin(), cls.children.end());
    std::set<NodeId> seen(cls.children.begin(), cls.children.end());
    while (!queue.empty()) {
      NodeId d = queue.front();
      queue.pop_front();
      ancestor_sets_.Mutable(d).Set(node);
      for (NodeId c : nodes_[d].children) {
        if (seen.insert(c).second) queue.push_back(c);
      }
    }
  }

  // Splice between parents and children: drop parent->child edges that the
  // new node makes transitive.
  for (NodeId p : cls.parents) {
    for (NodeId c : cls.children) {
      nodes_.Mutable(p).children.erase(c);
      nodes_.Mutable(c).parents.erase(p);
    }
  }
  for (NodeId p : cls.parents) {
    nodes_.Mutable(p).children.insert(node);
    nodes_.Mutable(node).parents.insert(p);
  }
  for (NodeId c : cls.children) {
    nodes_.Mutable(c).parents.insert(node);
    nodes_.Mutable(node).children.insert(c);
    // The child may have been a root (no named parents); it no longer is.
    roots_.erase(c);
  }
  if (cls.parents.empty()) roots_.insert(node);
  return node;
}

Result<NodeId> Taxonomy::NodeOf(ConceptId cid) const {
  const NodeId* node = node_of_concept_.Find(cid);
  if (node == nullptr) {
    return Status::NotFound(
        StrCat("concept not in taxonomy: ",
               vocab_->symbols().Name(vocab_->concept_info(cid).name)));
  }
  return *node;
}

std::vector<NodeId> Taxonomy::Ancestors(NodeId node) const {
  return ancestor_sets_[node].ToVector();
}

std::vector<NodeId> Taxonomy::Descendants(NodeId node) const {
  std::set<NodeId> seen;
  std::deque<NodeId> queue(nodes_[node].children.begin(),
                           nodes_[node].children.end());
  for (NodeId c : queue) seen.insert(c);
  std::vector<NodeId> out;
  while (!queue.empty()) {
    NodeId n = queue.front();
    queue.pop_front();
    out.push_back(n);
    for (NodeId c : nodes_[n].children) {
      if (seen.insert(c).second) queue.push_back(c);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> Taxonomy::TopologicalNodes() const {
  const size_t n = nodes_.size();
  std::vector<size_t> pending(n, 0);
  // Kahn's algorithm over the parent relation with an ordered frontier:
  // a std::set pops the lowest ready id first, which pins one canonical
  // order for a given DAG.
  std::set<NodeId> ready;
  for (NodeId v = 0; v < n; ++v) {
    pending[v] = nodes_[v].parents.size();
    if (pending[v] == 0) ready.insert(v);
  }
  std::vector<NodeId> out;
  out.reserve(n);
  while (!ready.empty()) {
    NodeId v = *ready.begin();
    ready.erase(ready.begin());
    out.push_back(v);
    for (NodeId c : nodes_[v].children) {
      if (--pending[c] == 0) ready.insert(c);
    }
  }
  return out;
}

}  // namespace classic
