// The schema taxonomy: named concepts organized by subsumption.
//
// "All concepts in the schema are reduced to a normal form, and then are
// compared to each other to establish the subsumption hierarchy" (paper,
// Section 5). The subsumption relation induces an acyclic directed graph
// over the space of named concepts — the IS-A hierarchy — which, crucially,
// is *computed from the definitions* and not under user control.
//
// Nodes are equivalence classes: distinct names whose definitions are
// mutually subsuming share one node (the paper's Section 2.2 observes that
// several different expressions can denote the same class).
//
// Classification uses the standard two-phase search: a top-down sweep for
// the most-specific subsumers (exploiting that the subsumer set is
// upward-closed) followed by a downward sweep from those parents for the
// most-general subsumees. Three layers keep the constant factors down:
//
//  - every subsumption verdict lands in a persistent SubsumptionIndex
//    keyed on interned NfIds (verdicts never go stale, so the index is
//    shared across Classify calls, KB realization and queries);
//  - Insert seeds the top-down phase with the definition's *told*
//    subsumers (named conjuncts), which are subsumers by construction and
//    need no test — the search effectively starts below them;
//  - the transitive-ancestor index is a dynamic bitset per node, giving
//    O(1) ancestor tests and O(words) set unions on insert.
//
// The number of subsumption tests actually computed (memo misses) is
// reported so benches E2/E3 can measure the pruning.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "desc/normal_form.h"
#include "desc/vocabulary.h"
#include "subsume/subsume_index.h"
#include "util/bitset.h"
#include "util/cow.h"
#include "util/status.h"

namespace classic {

/// Identifier of a taxonomy node (an equivalence class of named concepts).
using NodeId = uint32_t;

/// \brief Result of classifying a normal form against the taxonomy.
struct Classification {
  /// Most specific named subsumers ("immediate parents").
  std::vector<NodeId> parents;
  /// Most general named subsumees ("immediate children").
  std::vector<NodeId> children;
  /// Node whose concepts are equivalent to the classified form, if any.
  std::optional<NodeId> equivalent;
  /// Number of subsumption tests actually computed (memo misses; pruning
  /// statistic).
  size_t subsumption_tests = 0;
};

/// \brief The IS-A DAG over named concepts.
class Taxonomy {
 public:
  explicit Taxonomy(const Vocabulary* vocab)
      : vocab_(vocab),
        subsume_index_(std::make_shared<SubsumptionIndex>()) {}

  /// \brief Copy-on-write copy bound to `vocab` — the epoch publish path.
  /// The node/edge arrays and the ancestor index share chunk storage with
  /// the source (the writer path-copies touched chunks on its next
  /// insert); the concept directory shares frozen layers; the subsumption
  /// memo is the SAME lock-free index (interned NfIds live in the shared
  /// normal-form store, so verdicts are valid on every copy and all
  /// epochs warm one table). O(delta), not O(schema).
  Taxonomy(const Taxonomy& other, const Vocabulary* vocab)
      : vocab_(vocab),
        nodes_(other.nodes_),
        ancestor_sets_(other.ancestor_sets_),
        node_of_concept_(other.node_of_concept_.Fork()),
        roots_(other.roots_),
        subsume_index_(other.subsume_index_),
        total_insert_tests_(other.total_insert_tests_) {}

  Taxonomy(const Taxonomy&) = delete;
  Taxonomy& operator=(const Taxonomy&) = delete;

  /// \brief Inserts a named concept (already registered in the
  /// Vocabulary). Returns the node it lives on — a fresh node, or an
  /// existing one when the definition is equivalent to a known concept.
  Result<NodeId> Insert(ConceptId cid);

  /// \brief Classifies `nf` without inserting anything.
  Classification Classify(const NormalForm& nf) const;

  /// \brief Same, seeded with nodes already known to subsume `nf` (told
  /// subsumers — e.g. named conjuncts of the definition `nf` came from).
  /// Seeds and their ancestors are taken on faith, not tested.
  Classification Classify(const NormalForm& nf,
                          const std::vector<NodeId>& told_subsumers) const;

  /// \brief Node carrying `concept`, or NotFound if never inserted.
  Result<NodeId> NodeOf(ConceptId cid) const;

  /// Concepts (synonyms) living on a node.
  const std::vector<ConceptId>& Synonyms(NodeId node) const {
    return nodes_[node].synonyms;
  }
  const NormalFormPtr& NodeForm(NodeId node) const { return nodes_[node].nf; }

  const std::set<NodeId>& Parents(NodeId node) const {
    return nodes_[node].parents;
  }
  const std::set<NodeId>& Children(NodeId node) const {
    return nodes_[node].children;
  }

  /// \brief All (transitive) ancestors, excluding the node itself. Served
  /// from an incrementally-maintained bitset index (the paper cites ideas
  /// "for efficiently maintaining information about the subsumption
  /// hierarchy itself").
  std::vector<NodeId> Ancestors(NodeId node) const;

  /// \brief O(1) ancestor test from the same index.
  bool IsAncestor(NodeId ancestor, NodeId node) const {
    return ancestor_sets_[node].Test(ancestor);
  }

  /// \brief All (transitive) descendants, excluding the node itself.
  std::vector<NodeId> Descendants(NodeId node) const;

  /// \brief Every node, ancestors before descendants (deterministic:
  /// among nodes whose parents are all emitted, lowest id first). The
  /// whole-program analyzer folds inherited constraints in one sweep
  /// over this order.
  std::vector<NodeId> TopologicalNodes() const;

  /// Nodes with no parents (children of the implicit THING root).
  const std::set<NodeId>& roots() const { return roots_; }
  size_t num_nodes() const { return nodes_.size(); }

  /// \brief The shared subsumption memo. Grows monotonically; safe to
  /// consult from any code holding forms interned in this database's
  /// NormalFormStore (KB realization, query instance checks, ...).
  SubsumptionIndex* subsumption_index() const { return subsume_index_.get(); }

  /// Total subsumption tests computed by all Insert calls (bench E2).
  size_t total_insert_tests() const { return total_insert_tests_; }

  /// \brief Drains the COW copy counters (chunks path-copied + concept
  /// directory values copied down) accumulated since the last call.
  size_t TakeCowCopies() {
    return nodes_.TakeChunkCopies() + ancestor_sets_.TakeChunkCopies() +
           node_of_concept_.TakeValueCopies();
  }

  /// \brief Approximate bytes of chunk storage shareable with copies.
  size_t ApproxSharedBytes() const {
    return nodes_.ApproxChunkBytes() + ancestor_sets_.ApproxChunkBytes();
  }

 private:
  struct Node {
    std::vector<ConceptId> synonyms;
    NormalFormPtr nf;
    std::set<NodeId> parents;
    std::set<NodeId> children;
  };

  Classification ClassifyInternal(
      const NormalForm& nf, const std::vector<NodeId>* told_subsumers) const;

  const Vocabulary* vocab_;
  /// Node/edge arrays share chunks across epoch copies (COW).
  CowVector<Node> nodes_;
  /// ancestor_sets_[n] = every strict ancestor of n; maintained on insert.
  CowVector<DynamicBitset> ancestor_sets_;
  CowMap<ConceptId, NodeId> node_of_concept_;
  std::set<NodeId> roots_;
  /// Persistent (NfId, NfId) -> verdict memo; interned forms are
  /// immutable, so entries never go stale, and the index is internally
  /// synchronized — shared by every epoch copy via shared_ptr.
  std::shared_ptr<SubsumptionIndex> subsume_index_;
  size_t total_insert_tests_ = 0;
};

}  // namespace classic
