#include "obs/histogram.h"

#include <bit>

namespace classic::obs {

namespace {

/// Bucket index for a duration: bit width of the nanosecond count,
/// clamped to the table (bucket b covers [2^(b-1), 2^b)).
size_t BucketOf(uint64_t nanos) {
  const size_t b = static_cast<size_t>(std::bit_width(nanos));
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

/// Geometric midpoint of a bucket — the percentile estimate reported for
/// samples that landed in it.
uint64_t BucketMid(size_t bucket) {
  if (bucket == 0) return 0;
  const uint64_t lo = uint64_t{1} << (bucket - 1);
  return lo + lo / 2;
}

/// Smallest duration d such that at least `rank` samples are <= d,
/// estimated from bucket counts.
uint64_t PercentileFromBuckets(
    const std::array<uint64_t, kHistogramBuckets>& buckets, uint64_t count,
    double q) {
  if (count == 0) return 0;
  const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  uint64_t seen = 0;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[b];
    if (seen > rank) return BucketMid(b);
  }
  return BucketMid(kHistogramBuckets - 1);
}

/// Relaxed compare-exchange min/max (uncontended in practice: one sample
/// per served operation).
void AtomicMin(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (value < cur &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (value > cur &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}

/// The registry's histogram bank: constant-initialized, never destroyed.
LatencyHistogram g_histograms[kNumOps];

}  // namespace

void LatencyHistogram::Record(uint64_t nanos) {
  buckets_[BucketOf(nanos)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(nanos, std::memory_order_relaxed);
  AtomicMin(&min_, nanos);
  AtomicMax(&max_, nanos);
}

HistogramView LatencyHistogram::View(Op op) const {
  HistogramView out;
  out.op = op;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum_ns = sum_.load(std::memory_order_relaxed);
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    out.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  if (out.count > 0) {
    out.min_ns = min_.load(std::memory_order_relaxed);
    out.max_ns = max_.load(std::memory_order_relaxed);
    out.p50_ns = PercentileFromBuckets(out.buckets, out.count, 0.50);
    out.p90_ns = PercentileFromBuckets(out.buckets, out.count, 0.90);
    out.p99_ns = PercentileFromBuckets(out.buckets, out.count, 0.99);
  }
  return out;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

LatencyHistogram& OpHistogram(Op op) {
  return g_histograms[static_cast<size_t>(op)];
}

void RecordLatency(Op op, uint64_t nanos) { OpHistogram(op).Record(nanos); }

std::array<HistogramView, kNumOps> SnapshotHistograms() {
  std::array<HistogramView, kNumOps> out;
  for (size_t i = 0; i < kNumOps; ++i) {
    out[i] = g_histograms[i].View(static_cast<Op>(i));
  }
  return out;
}

void ResetHistograms() {
  for (auto& h : g_histograms) h.Reset();
}

}  // namespace classic::obs
