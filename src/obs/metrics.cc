#include "obs/metrics.h"

#include <atomic>

namespace classic::obs {

namespace {

constexpr const char* kCounterNames[kNumCounters] = {
    "subsumption-tests",
    "subsumption-memo-hits",
    "normalizations",
    "intern-hits",
    "intern-misses",
    "classifications",
    "propagation-steps",
    "rule-firings",
    "realizations",
    "instance-checks",
    "queries-served",
    "epoch-publishes",
    "snapshot-acquisitions",
    "publish-chunks-copied",
    "publish-bytes-shared",
    "serve-accepted",
    "serve-shed",
    "propagation-components",
    "propagation-wavefronts",
    "propagation-dedup-hits",
    "propagation-max-wavefront",
    "planner-index-path",
    "planner-scan-path",
    "planner-postings-scanned",
    "planner-candidates-pruned",
};

constexpr const char* kOpNames[kNumOps] = {
    "ask",
    "ask-possible",
    "ask-description",
    "path-query",
    "describe-individual",
    "most-specific-concepts",
    "instances-of",
    "mutate",
    "publish",
    "serve-queue-wait",
    "propagate",
};

/// The engine-wide totals every thread flushes into. Plain namespace
/// atomics: constant-initialized, never destroyed, safe to touch from
/// TLS flushes at any point of the process lifetime.
std::atomic<uint64_t> g_totals[kNumCounters];

}  // namespace

const char* CounterName(Counter c) {
  return kCounterNames[static_cast<size_t>(c)];
}

std::optional<Counter> CounterFromName(std::string_view name) {
  for (size_t i = 0; i < kNumCounters; ++i) {
    if (name == kCounterNames[i]) return static_cast<Counter>(i);
  }
  return std::nullopt;
}

const char* OpName(Op op) { return kOpNames[static_cast<size_t>(op)]; }

std::optional<Op> OpFromName(std::string_view name) {
  for (size_t i = 0; i < kNumOps; ++i) {
    if (name == kOpNames[i]) return static_cast<Op>(i);
  }
  return std::nullopt;
}

#if CLASSIC_OBS
void CounterMaxTo(Counter c, uint64_t value) {
  std::atomic<uint64_t>& total = g_totals[static_cast<size_t>(c)];
  uint64_t cur = total.load(std::memory_order_relaxed);
  while (cur < value &&
         !total.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void FlushLocalCounters() {
  internal::ThreadCounters& tls = internal::t_counters;
  for (size_t i = 0; i < kNumCounters; ++i) {
    const uint64_t pending = tls.counts[i] - tls.flushed[i];
    if (pending != 0) {
      g_totals[i].fetch_add(pending, std::memory_order_relaxed);
      tls.flushed[i] = tls.counts[i];
    }
  }
}
#endif

CounterArray ReadCounters() {
  FlushLocalCounters();
  CounterArray out;
  for (size_t i = 0; i < kNumCounters; ++i) {
    out[i] = g_totals[i].load(std::memory_order_relaxed);
  }
  return out;
}

void ResetCounters() {
  FlushLocalCounters();
  for (auto& total : g_totals) total.store(0, std::memory_order_relaxed);
}

}  // namespace classic::obs
