// Trace spans: decomposing one slow operation into its inference phases.
//
// A TraceSpan marks one phase (parse -> normalize -> classify -> test)
// on the thread executing it. Spans nest through a thread-local stack, so
// every span records its parent id and a whole query decomposes into a
// tree. The collected spans dump as Chrome trace_event JSON
// (chrome://tracing, Perfetto) via TraceJson().
//
// Tracing is off by default: a disabled span construction is one relaxed
// load and a branch, cheap enough to leave spans in serving paths
// permanently (inference *inner* loops — subsumption, Satisfies — carry
// counters only, never spans). When CLASSIC_OBS is compiled out, spans
// vanish entirely.

#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace classic::obs {

/// \brief Starts collecting spans (clears nothing; use ClearTrace for a
/// fresh buffer).
void StartTracing();

/// \brief Stops collecting. In-flight spans on other threads finish
/// without being recorded.
void StopTracing();

bool TracingActive();

/// \brief Drops all collected spans.
void ClearTrace();

/// \brief Number of spans collected so far.
size_t TraceSpanCount();

/// \brief Chrome trace_event JSON ({"traceEvents": [...]}): one complete
/// ("ph":"X") event per finished span, with the span id and parent id in
/// "args". Timestamps are microseconds on the process monotonic clock.
std::string TraceJson();

/// \brief RAII phase marker. `name` must outlive the span (string
/// literals in practice).
class TraceSpan {
 public:
#if CLASSIC_OBS
  explicit TraceSpan(const char* name);
  ~TraceSpan();
#else
  explicit TraceSpan(const char*) {}
#endif

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

#if CLASSIC_OBS
 private:
  const char* name_ = nullptr;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  uint64_t start_ns_ = 0;
  bool active_ = false;
#endif
};

}  // namespace classic::obs
