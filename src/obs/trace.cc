#include "obs/trace.h"

#include <atomic>
#include <mutex>
#include <vector>

#include "util/string_util.h"

namespace classic::obs {

namespace {

struct TraceEvent {
  const char* name;
  uint64_t id;
  uint64_t parent;
  uint32_t tid;
  uint64_t start_ns;
  uint64_t dur_ns;
};

std::atomic<bool> g_tracing{false};
/// Span ids are never reused; 0 means "no parent".
std::atomic<uint64_t> g_next_span_id{1};
std::atomic<uint32_t> g_next_tid{1};

std::mutex g_events_mutex;
std::vector<TraceEvent>& Events() {
  static std::vector<TraceEvent>* events = new std::vector<TraceEvent>();
  return *events;
}

constexpr size_t kMaxSpanDepth = 64;

/// Per-thread span stack; constant-initialized (tid assigned lazily).
struct ThreadSpans {
  uint64_t stack[kMaxSpanDepth];
  size_t depth;
  uint32_t tid;
};

thread_local ThreadSpans t_spans{};

uint32_t LocalTid() {
  if (t_spans.tid == 0) {
    t_spans.tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  }
  return t_spans.tid;
}

}  // namespace

void StartTracing() { g_tracing.store(true, std::memory_order_relaxed); }

void StopTracing() { g_tracing.store(false, std::memory_order_relaxed); }

bool TracingActive() { return g_tracing.load(std::memory_order_relaxed); }

void ClearTrace() {
  std::lock_guard<std::mutex> lock(g_events_mutex);
  Events().clear();
}

size_t TraceSpanCount() {
  std::lock_guard<std::mutex> lock(g_events_mutex);
  return Events().size();
}

std::string TraceJson() {
  std::lock_guard<std::mutex> lock(g_events_mutex);
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : Events()) {
    if (!first) out += ",";
    first = false;
    // Chrome expects microsecond timestamps; keep ns precision with a
    // fractional part.
    out += StrCat("\n{\"name\": \"", e.name,
                  "\", \"cat\": \"classic\", \"ph\": \"X\", \"pid\": 1",
                  ", \"tid\": ", e.tid, ", \"ts\": ", e.start_ns / 1000, ".",
                  e.start_ns % 1000, ", \"dur\": ", e.dur_ns / 1000, ".",
                  e.dur_ns % 1000, ", \"args\": {\"id\": ", e.id,
                  ", \"parent\": ", e.parent, "}}");
  }
  out += "\n]}\n";
  return out;
}

#if CLASSIC_OBS

TraceSpan::TraceSpan(const char* name) {
  if (!TracingActive()) return;
  if (t_spans.depth >= kMaxSpanDepth) return;  // drop, keep tree consistent
  name_ = name;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = t_spans.depth > 0 ? t_spans.stack[t_spans.depth - 1] : 0;
  t_spans.stack[t_spans.depth++] = id_;
  start_ns_ = MonotonicNanos();
  active_ = true;
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const uint64_t end_ns = MonotonicNanos();
  --t_spans.depth;
  // Recorded even if tracing stopped meanwhile: the span started under
  // tracing and the buffer is still valid.
  TraceEvent e{name_, id_, parent_, LocalTid(), start_ns_,
               end_ns - start_ns_};
  std::lock_guard<std::mutex> lock(g_events_mutex);
  Events().push_back(e);
}

#endif  // CLASSIC_OBS

}  // namespace classic::obs
