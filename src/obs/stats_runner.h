// The classic_stats replay harness: runs a `.classic` / `.clq` program
// and reports the inference work it cost, per phase.
//
// The run has three phases, mirroring the serving lifecycle:
//
//   load     every schema / update form, replayed through the
//            Interpreter into a scratch Database (definitions,
//            individuals, rules — the write side);
//   publish  adopting a clone of the loaded base into a KbEngine and
//            publishing the first epoch;
//   query    every query-kind form, served through KbEngine::ServeQuery
//            against that one published snapshot (so the query phase
//            exercises exactly the instrumented serving path, latency
//            histograms included).
//
// Each phase reports its operation count, wall time and counter deltas;
// the report ends with the full registry snapshot. Query forms are
// answered against the *final* state of the base, not the point in the
// program where they appear — classic_stats measures inference work, it
// is not a REPL.

#pragma once

#include <string>
#include <vector>

#include "obs/registry.h"
#include "util/result.h"

namespace classic::obs {

/// \brief One phase's aggregate work.
struct PhaseStats {
  std::string phase;
  size_t ops = 0;
  uint64_t wall_nanos = 0;
  CounterArray counters{};
};

/// \brief Planner access-path choices for one request kind: how many
/// queries of that kind ran, and how many concept retrievals inside them
/// the planner answered from an index-derived candidate set vs. the
/// taxonomy-pruned scan. One query can contribute several retrievals (a
/// path query plans each concept atom), so index_path + scan_path may
/// exceed queries.
struct PlannerKindStats {
  std::string kind;
  uint64_t queries = 0;
  uint64_t index_path = 0;
  uint64_t scan_path = 0;
};

/// \brief The full report for one program run.
struct ProgramStats {
  std::string file;
  /// Always exactly "load", "publish", "query", in that order (a stable
  /// shape — the golden schema check depends on it).
  std::vector<PhaseStats> phases;
  /// Per-kind planner choice histogram for the query phase: always all
  /// seven request kinds, in QueryRequest::Kind order (another stable
  /// shape the schema check pins).
  std::vector<PlannerKindStats> planner;
  /// Registry state after the run (counters + latency histograms).
  MetricsSnapshot registry;

  std::string ToJson() const;
  std::string ToText() const;
};

/// \brief Resets the process metrics registry, replays the program at
/// `path` and returns the per-phase report. Errors (unreadable file,
/// unparsable program, rejected schema/update form) are a Status error;
/// a query form that fails is reported inside its answer and does not
/// abort the run.
Result<ProgramStats> ReplayProgramWithStats(const std::string& path);

}  // namespace classic::obs
