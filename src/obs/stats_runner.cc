#include "obs/stats_runner.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "classic/interpreter.h"
#include "kb/kb_engine.h"
#include "sexpr/sexpr.h"
#include "util/string_util.h"

namespace classic::obs {

namespace {

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError(StrCat("cannot open ", path));
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Maps a query-kind form onto a serving request; nullopt for every
/// other head (schema, updates, introspection the engine does not
/// serve). The head names are the operator language's, the request text
/// is what the serving layer parses.
std::optional<QueryRequest> AsQueryRequest(const sexpr::Value& op) {
  if (!op.IsList() || op.size() == 0 || !op.at(0).IsSymbol()) {
    return std::nullopt;
  }
  const std::string& head = op.at(0).text();
  if (head == "select") return QueryRequest::PathQuery(op.ToString());
  if (op.size() < 2) return std::nullopt;
  std::string arg = op.at(1).ToString();
  if (head == "ask") return QueryRequest::Ask(std::move(arg));
  if (head == "ask-possible") return QueryRequest::AskPossible(std::move(arg));
  if (head == "ask-description") {
    return QueryRequest::AskDescription(std::move(arg));
  }
  if (head == "describe") return QueryRequest::DescribeIndividual(std::move(arg));
  if (head == "msc") return QueryRequest::MostSpecificConcepts(std::move(arg));
  if (head == "instances") return QueryRequest::InstancesOf(std::move(arg));
  return std::nullopt;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += StrCat("\\u00", std::string(1, hex[(c >> 4) & 0xf]),
                        std::string(1, hex[c & 0xf]));
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string PhaseToJson(const PhaseStats& p) {
  return StrCat("{\"phase\": \"", p.phase, "\", \"ops\": ", p.ops,
                ", \"wall_ns\": ", p.wall_nanos,
                ", \"counters\": ", CountersToJson(p.counters), "}");
}

}  // namespace

std::string ProgramStats::ToJson() const {
  std::string out = StrCat("{\"file\": \"", JsonEscape(file),
                           "\",\n \"phases\": [");
  for (size_t i = 0; i < phases.size(); ++i) {
    if (i > 0) out += ",\n            ";
    out += PhaseToJson(phases[i]);
  }
  out += "],\n \"planner\": [";
  for (size_t i = 0; i < planner.size(); ++i) {
    if (i > 0) out += ",\n             ";
    out += StrCat("{\"kind\": \"", planner[i].kind,
                  "\", \"queries\": ", planner[i].queries,
                  ", \"index-path\": ", planner[i].index_path,
                  ", \"scan-path\": ", planner[i].scan_path, "}");
  }
  out += StrCat("],\n \"registry\": ", registry.ToJson(), "}");
  return out;
}

std::string ProgramStats::ToText() const {
  std::string out = StrCat(file, "\n");
  for (const PhaseStats& p : phases) {
    out += StrCat("phase ", p.phase, ": ", p.ops, " ops in ",
                  HumanNanos(p.wall_nanos), "\n");
    for (size_t i = 0; i < kNumCounters; ++i) {
      if (p.counters[i] == 0) continue;
      out += StrCat("  ", CounterName(static_cast<Counter>(i)), " = ",
                    p.counters[i], "\n");
    }
  }
  for (const PlannerKindStats& p : planner) {
    if (p.queries == 0) continue;
    out += StrCat("planner ", p.kind, ": ", p.queries, " queries, ",
                  p.index_path, " index-path, ", p.scan_path,
                  " scan-path\n");
  }
  out += registry.ToText();
  return out;
}

Result<ProgramStats> ReplayProgramWithStats(const std::string& path) {
  CLASSIC_ASSIGN_OR_RETURN(std::string text, ReadWholeFile(path));
  CLASSIC_ASSIGN_OR_RETURN(std::vector<sexpr::Value> forms,
                           sexpr::ParseAll(text));

  ResetMetrics();
  ProgramStats report;
  report.file = path;

  // --- load: replay everything the engine does not serve.
  std::vector<QueryRequest> queries;
  Database db;
  Interpreter interp(&db);
  {
    PhaseStats phase;
    phase.phase = "load";
    CounterDeltaScope window;
    const uint64_t start = MonotonicNanos();
    for (const sexpr::Value& op : forms) {
      if (std::optional<QueryRequest> req = AsQueryRequest(op)) {
        queries.push_back(std::move(*req));
        continue;
      }
      Result<std::string> r = interp.Execute(op);
      if (!r.ok()) {
        return Status(r.status().code(),
                      StrCat(path, ": ", op.at(0).text(), ": ",
                             r.status().message()));
      }
      ++phase.ops;
    }
    phase.wall_nanos = MonotonicNanos() - start;
    phase.counters = window.Deltas();
    report.phases.push_back(std::move(phase));
  }

  // --- publish: fork the loaded base copy-on-write as epoch 1.
  KbEngine engine(KbEngine::Options{.num_threads = 1});
  {
    PhaseStats phase;
    phase.phase = "publish";
    phase.ops = 1;
    CounterDeltaScope window;
    const uint64_t start = MonotonicNanos();
    engine.ResetFrom(db.kb());
    phase.wall_nanos = MonotonicNanos() - start;
    phase.counters = window.Deltas();
    report.phases.push_back(std::move(phase));
  }

  // --- query: serve every query form against the published snapshot.
  {
    PhaseStats phase;
    phase.phase = "query";
    CounterDeltaScope window;
    const uint64_t start = MonotonicNanos();
    SnapshotPtr snap = engine.snapshot();
    // Always report all seven kinds in Kind order, even at zero — the
    // histogram's shape is part of the JSON contract.
    constexpr size_t kNumKinds =
        static_cast<size_t>(QueryRequest::Kind::kInstancesOf) + 1;
    report.planner.resize(kNumKinds);
    for (size_t k = 0; k < kNumKinds; ++k) {
      report.planner[k].kind =
          QueryKindName(static_cast<QueryRequest::Kind>(k));
    }
    for (const QueryRequest& req : queries) {
      // ServeQuery's per-answer counter deltas attribute each concept
      // retrieval's access-path choice to the request that caused it.
      QueryAnswer ans = KbEngine::ServeQuery(snap->kb(), req);
      PlannerKindStats& pk =
          report.planner[static_cast<size_t>(req.kind)];
      ++pk.queries;
      pk.index_path += ans.stats.counter(Counter::kPlannerIndexPath);
      pk.scan_path += ans.stats.counter(Counter::kPlannerScanPath);
      ++phase.ops;
    }
    phase.wall_nanos = MonotonicNanos() - start;
    phase.counters = window.Deltas();
    report.phases.push_back(std::move(phase));
  }

  report.registry = SnapshotMetrics();
  return report;
}

}  // namespace classic::obs
