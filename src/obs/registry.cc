#include "obs/registry.h"

#include "util/string_util.h"

namespace classic::obs {

namespace {

std::string HistogramToJson(const HistogramView& h) {
  std::string out = StrCat("{\"op\": \"", OpName(h.op),
                           "\", \"count\": ", h.count,
                           ", \"sum_ns\": ", h.sum_ns,
                           ", \"min_ns\": ", h.min_ns,
                           ", \"max_ns\": ", h.max_ns,
                           ", \"p50_ns\": ", h.p50_ns,
                           ", \"p90_ns\": ", h.p90_ns,
                           ", \"p99_ns\": ", h.p99_ns, ", \"buckets\": [");
  bool first = true;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    if (h.buckets[b] == 0) continue;
    if (!first) out += ", ";
    first = false;
    // le_ns: exclusive upper bound of the bucket (2^b nanoseconds).
    out += StrCat("{\"le_ns\": ", uint64_t{1} << b,
                  ", \"count\": ", h.buckets[b], "}");
  }
  out += "]}";
  return out;
}

}  // namespace

std::string HumanNanos(uint64_t ns) {
  if (ns < 1000) return StrCat(ns, "ns");
  if (ns < 1000 * 1000) return StrCat(ns / 1000, ".", (ns / 100) % 10, "us");
  if (ns < 1000ull * 1000 * 1000) {
    return StrCat(ns / 1000000, ".", (ns / 100000) % 10, "ms");
  }
  return StrCat(ns / 1000000000, ".", (ns / 100000000) % 10, "s");
}

std::string CountersToJson(const CounterArray& counters) {
  std::string out = "{";
  for (size_t i = 0; i < kNumCounters; ++i) {
    if (i > 0) out += ", ";
    out += StrCat("\"", CounterName(static_cast<Counter>(i)),
                  "\": ", counters[i]);
  }
  out += "}";
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = StrCat("{\"counters\": ", CountersToJson(counters),
                           ", \"histograms\": [");
  bool first = true;
  for (const HistogramView& h : histograms) {
    if (h.count == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += HistogramToJson(h);
  }
  out += "]}";
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::string out = "counters:\n";
  for (size_t i = 0; i < kNumCounters; ++i) {
    out += StrCat("  ", CounterName(static_cast<Counter>(i)), " = ",
                  counters[i], "\n");
  }
  out += "latency (count / p50 / p99 / max):\n";
  for (const HistogramView& h : histograms) {
    if (h.count == 0) continue;
    out += StrCat("  ", OpName(h.op), ": ", h.count, " / ",
                  HumanNanos(h.p50_ns), " / ", HumanNanos(h.p99_ns), " / ",
                  HumanNanos(h.max_ns), "\n");
  }
  return out;
}

MetricsSnapshot SnapshotMetrics() {
  MetricsSnapshot out;
  out.counters = ReadCounters();
  out.histograms = SnapshotHistograms();
  return out;
}

void ResetMetrics() {
  ResetCounters();
  ResetHistograms();
}

}  // namespace classic::obs
