// Lock-free fixed log-bucket latency histograms, one per obs::Op.
//
// Bucket b counts durations in [2^(b-1), 2^b) nanoseconds (bucket 0 is
// [0, 1ns)); 48 buckets cover up to ~78 hours. Recording is a handful of
// relaxed atomic adds — histograms sit at operation granularity (one
// Record per served query / publish), never inside inference loops, so
// atomic cost is irrelevant there. Percentiles are estimated from the
// bucket counts by cumulative walk with a geometric midpoint, which is
// exact to within one octave — the right resolution for a log-scale
// latency story.

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "obs/metrics.h"

namespace classic::obs {

inline constexpr size_t kHistogramBuckets = 48;

/// \brief Immutable copy of one operation's histogram, with derived
/// summary statistics. `buckets[b]` counts samples in [2^(b-1), 2^b) ns.
struct HistogramView {
  Op op = Op::kAsk;
  uint64_t count = 0;
  uint64_t sum_ns = 0;
  uint64_t min_ns = 0;
  uint64_t max_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t p90_ns = 0;
  uint64_t p99_ns = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};
};

/// \brief One lock-free histogram. All methods are safe under any number
/// of concurrent Record / View calls.
class LatencyHistogram {
 public:
  void Record(uint64_t nanos);

  /// A consistent-enough copy for reporting (individual fields are read
  /// with relaxed loads; a concurrent Record may be partially visible,
  /// which summary reporting tolerates).
  HistogramView View(Op op) const;

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kHistogramBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~uint64_t{0}};
  std::atomic<uint64_t> max_{0};
};

/// \brief The global per-operation histogram (registry-owned).
LatencyHistogram& OpHistogram(Op op);

/// \brief Records one sample into the operation's global histogram.
/// Available in both build configurations (engine call sites gate
/// themselves behind CLASSIC_OBS; tools may time their own phases
/// unconditionally).
void RecordLatency(Op op, uint64_t nanos);

/// \brief Views of every operation histogram, in Op order (all kNumOps,
/// including empty ones).
std::array<HistogramView, kNumOps> SnapshotHistograms();

/// \brief Zeroes all operation histograms (tool startup, test setup).
void ResetHistograms();

}  // namespace classic::obs
