// Inference observability: engine-wide counters (obs/metrics.h), latency
// histograms (obs/histogram.h), a serializable registry view
// (obs/registry.h) and trace spans (obs/trace.h).
//
// The paper sells CLASSIC on *predictable* inference — subsumption "in
// time proportional to the product of the two concepts' sizes",
// normalization and rule propagation to a fixed point — and this layer
// makes the engine report how much of each inference it actually performs
// per operation, at the granularity of the complete-subsumption cost
// model (one count per structural comparison).
//
// Design constraints (DESIGN.md section 9):
//
//  - The hottest site is a memoized subsumption test (~12 ns/op on the
//    reference container), so a hot-path increment must cost ~1 cycle.
//    Counters are therefore PLAIN thread-local adds: every thread owns a
//    constant-initialized TLS slab and `IncrCounter` is a single
//    non-atomic add into it. No other thread ever reads the slab.
//  - Global totals are relaxed atomics, fed by *flushing* a thread's slab
//    at operation boundaries (CounterDeltaScope destruction, or an
//    explicit FlushLocalCounters). The flush is the only synchronization;
//    hot paths never touch shared cache lines.
//  - Everything compiles out behind CLASSIC_OBS (a 0/1 macro, set by the
//    -DCLASSIC_OBS=ON/OFF CMake option): with it OFF the increment macros
//    expand to nothing and the engine byte-matches the uninstrumented
//    build. The registry API itself stays available (and reads zeros) so
//    tools compile in both configurations.
//
// Per-operation deltas: CounterDeltaScope snapshots the calling thread's
// slab on entry; Deltas() is the difference. One query is served entirely
// on one thread, so the delta is exact — and because every counted
// quantity is a deterministic function of the (immutable) snapshot being
// queried, batch totals are byte-identical between serial and concurrent
// runs on a warm snapshot (tests/obs_parallel_test.cc pins that down).

#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

#ifndef CLASSIC_OBS
#define CLASSIC_OBS 1
#endif

namespace classic::obs {

/// \brief One engine-wide event class. Stable kebab-case names
/// (CounterName) are the serialization contract for classic_stats JSON
/// and the golden schema check.
enum class Counter : uint32_t {
  /// Structural subsumption comparisons actually computed (memo misses
  /// and uncached calls), at every level of the RoleSubsumes recursion —
  /// the unit of the paper's size-product cost model.
  kSubsumptionTests = 0,
  /// Subsumption verdicts answered by the persistent memo table.
  kSubsumptionMemoHits,
  /// Description -> normal form conversions (Normalizer entry points).
  kNormalizations,
  /// Hash-consing lookups answered by an existing interned form.
  kInternHits,
  /// Hash-consing lookups that created a new interned form.
  kInternMisses,
  /// Taxonomy classifications (two-phase searches), schema inserts and
  /// query classification alike.
  kClassifications,
  /// Worklist steps run by the propagation engine.
  kPropagationSteps,
  /// Forward-chaining rule applications (at most one per rule/individual).
  kRuleFirings,
  /// Realizations: top-down recognition sweeps for one individual.
  kRealizations,
  /// Open-world instance tests (KnowledgeBase::Satisfies, recursive).
  kInstanceChecks,
  /// Requests evaluated by KbEngine::ServeQuery.
  kQueriesServed,
  /// Epochs published by KbEngine::Publish.
  kEpochPublishes,
  /// Snapshot acquisitions (KbEngine::snapshot()).
  kSnapshotAcquisitions,
  /// COW chunks/values path-copied to assemble the published epoch's
  /// delta (drained from the master at each Publish) — the O(delta)
  /// publication cost in units of copies.
  kPublishChunksCopied,
  /// Approximate bytes of chunk storage the published epoch shares with
  /// the master instead of deep-copying.
  kPublishBytesShared,
  /// Wire requests admitted by the serving front-end's admission
  /// controller (src/serve) — each admitted request is dispatched into a
  /// snapshot-isolated QueryBatch.
  kServeAccepted,
  /// Wire requests shed on overload: the admission controller was at its
  /// in-flight bound, so the server answered with a typed `overloaded`
  /// error frame instead of queueing unboundedly.
  kServeShed,
  /// Role-graph components scheduled by the propagation engine (1 per
  /// serial run; the independent-component count per parallel run).
  kPropagationComponents,
  /// Wavefronts drained by the propagation engine (each individual is
  /// re-derived at most once per wavefront).
  kPropagationWavefronts,
  /// Re-enqueues absorbed by the per-wavefront dirty bitset (and
  /// duplicate seed ids dropped before scheduling) — work the worklist
  /// engine deduplicated instead of re-running.
  kPropagationDedupHits,
  /// Watermark (not a sum): the largest single wavefront ever drained.
  /// Maintained by CounterMaxTo directly on the global total.
  kPropagationMaxWavefront,
  /// Concept retrievals the planner answered through an index-derived
  /// candidate set (FILLS postings / host ranges / enumerations,
  /// including the equivalent-concept extension fast path).
  kPlannerIndexPath,
  /// Concept retrievals the planner answered by the taxonomy-pruned
  /// candidate scan (the paper's Section 5 technique).
  kPlannerScanPath,
  /// Posting-list entries materialized into candidate bitsets by
  /// index-path retrievals (the index-side I/O of the cost model).
  kPlannerPostingsScanned,
  /// Candidates the index intersection eliminated before the
  /// per-candidate Satisfies test (work the scan path would have done).
  kPlannerCandidatesPruned,
  kCount
};

inline constexpr size_t kNumCounters = static_cast<size_t>(Counter::kCount);

/// Dense value vector indexed by Counter; the exchange currency between
/// the registry, QueryAnswer stats and the classic_stats renderer.
using CounterArray = std::array<uint64_t, kNumCounters>;

/// \brief Stable serialized name ("subsumption-tests", "intern-hits", ...).
const char* CounterName(Counter c);

/// \brief Inverse of CounterName; nullopt for unknown names.
std::optional<Counter> CounterFromName(std::string_view name);

/// \brief Operations with a latency histogram: the seven QueryRequest
/// kinds plus the writer-side Mutate/Publish. OpName returns the shared
/// kind<->string mapping ("ask", "path-query", "publish", ...) that
/// QueryKindName (kb/kb_engine.h), classic_stats and the JSON output all
/// use.
enum class Op : uint32_t {
  kAsk = 0,
  kAskPossible,
  kAskDescription,
  kPathQuery,
  kDescribeIndividual,
  kMostSpecificConcepts,
  kInstancesOf,
  kMutate,
  kPublish,
  /// Serving-front-end queue wait: decode of a request frame to the start
  /// of its batch dispatch (src/serve admission + batching delay).
  kServeQueueWait,
  /// One propagation run to its fixed point (serial or partitioned),
  /// excluding normalization of the asserted expression.
  kPropagate,
  kCount
};

inline constexpr size_t kNumOps = static_cast<size_t>(Op::kCount);

const char* OpName(Op op);
std::optional<Op> OpFromName(std::string_view name);

/// \brief Monotonic wall clock in nanoseconds (steady_clock).
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if CLASSIC_OBS

namespace internal {

/// Per-thread counter slab. Constant-initialized and trivially
/// destructible, so access is a direct TLS address — no init guard, no
/// atexit registration, no function call on the hot path. `flushed` is
/// the per-counter watermark already pushed to the global totals.
struct ThreadCounters {
  uint64_t counts[kNumCounters];
  uint64_t flushed[kNumCounters];
};

inline thread_local ThreadCounters t_counters{};

}  // namespace internal

/// \brief Bumps one counter on the calling thread. A single non-atomic
/// add into thread-local storage; visible in global totals after the next
/// flush (CounterDeltaScope destruction or FlushLocalCounters).
inline void IncrCounter(Counter c, uint64_t n = 1) {
  internal::t_counters.counts[static_cast<size_t>(c)] += n;
}

/// \brief Pushes the calling thread's unflushed counts into the global
/// totals (relaxed atomics). Called automatically when a
/// CounterDeltaScope closes.
void FlushLocalCounters();

/// \brief Raises a *watermark* counter to at least `value` (CAS-max on
/// the global total, bypassing the thread-local slabs — a max cannot be
/// accumulated additively). Use only for counters documented as
/// watermarks; ResetCounters zeroes them like any other.
void CounterMaxTo(Counter c, uint64_t value);

#else  // !CLASSIC_OBS

inline void IncrCounter(Counter, uint64_t = 1) {}
inline void FlushLocalCounters() {}
inline void CounterMaxTo(Counter, uint64_t) {}

#endif  // CLASSIC_OBS

/// Hot-path increment, compiled out entirely under -DCLASSIC_OBS=OFF.
#if CLASSIC_OBS
#define CLASSIC_OBS_COUNT(counter) \
  (::classic::obs::IncrCounter(::classic::obs::Counter::counter))
#define CLASSIC_OBS_COUNT_N(counter, n) \
  (::classic::obs::IncrCounter(::classic::obs::Counter::counter, (n)))
#else
#define CLASSIC_OBS_COUNT(counter) ((void)0)
#define CLASSIC_OBS_COUNT_N(counter, n) ((void)0)
#endif

/// \brief Global totals: everything flushed so far, plus the calling
/// thread's pending counts (it is flushed first). Counts accumulated by
/// other threads that have not reached a flush point yet are not
/// included; the engine flushes at every operation boundary.
CounterArray ReadCounters();

/// \brief Zeroes the global totals. Flushes the calling thread first.
/// Only meaningful while no other thread is actively counting (tool
/// startup, test setup).
void ResetCounters();

/// \brief RAII window measuring the calling thread's counter deltas.
///
/// Deltas() is exact for work done on this thread between construction
/// and the call. Destruction flushes the thread's counts to the global
/// totals, which is what makes engine totals visible at operation
/// granularity.
class CounterDeltaScope {
 public:
#if CLASSIC_OBS
  CounterDeltaScope() {
    for (size_t i = 0; i < kNumCounters; ++i) {
      start_[i] = internal::t_counters.counts[i];
    }
  }
  ~CounterDeltaScope() { FlushLocalCounters(); }
  CounterArray Deltas() const {
    CounterArray out;
    for (size_t i = 0; i < kNumCounters; ++i) {
      out[i] = internal::t_counters.counts[i] - start_[i];
    }
    return out;
  }
#else
  CounterDeltaScope() = default;
  CounterArray Deltas() const { return CounterArray{}; }
#endif

  CounterDeltaScope(const CounterDeltaScope&) = delete;
  CounterDeltaScope& operator=(const CounterDeltaScope&) = delete;

#if CLASSIC_OBS
 private:
  uint64_t start_[kNumCounters];
#endif
};

}  // namespace classic::obs
