// The metrics registry view: one serializable snapshot of every counter
// and latency histogram in the process. This is the shared spine the
// serving layer (KbEngine::MetricsSnapshot), the classic_stats CLI and
// tests all report through.

#pragma once

#include <array>
#include <string>

#include "obs/histogram.h"
#include "obs/metrics.h"

namespace classic::obs {

/// \brief Point-in-time copy of the whole registry.
struct MetricsSnapshot {
  CounterArray counters{};
  std::array<HistogramView, kNumOps> histograms{};

  /// Counter value by enum (sugar over the dense array).
  uint64_t counter(Counter c) const {
    return counters[static_cast<size_t>(c)];
  }

  /// \brief JSON object: {"counters": {name: value, ...}, "histograms":
  /// [{"op": ..., "count": ..., ...}, ...]}. Counters render the full
  /// catalog (stable key set — the golden schema check depends on it);
  /// histograms render only operations with at least one sample.
  std::string ToJson() const;

  /// \brief Human-readable table (REPL `(metrics)` op, classic_stats
  /// text mode).
  std::string ToText() const;
};

/// \brief Snapshots the global registry (flushes the calling thread's
/// counters first).
MetricsSnapshot SnapshotMetrics();

/// \brief Zeroes counters and histograms. Only meaningful while no other
/// thread is actively recording.
void ResetMetrics();

/// \brief Renders one counter-delta array as a JSON object over the full
/// stable counter catalog.
std::string CountersToJson(const CounterArray& counters);

/// \brief "12.3us"-style duration rendering for text tables.
std::string HumanNanos(uint64_t ns);

}  // namespace classic::obs
