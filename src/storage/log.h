// Append-only operation log.
//
// The paper takes "the database component of a complex application to be a
// cache for persistent information of limited complexity" (Section 1) and
// leaves secondary storage as future work (Section 5). We provide the
// simplest honest persistence story: every accepted mutating operation is
// appended, in concrete syntax, to a text log; recovery replays the log
// (optionally on top of a snapshot) through the command interpreter.
// Replay is deterministic because accepted updates are monotonic.

#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "sexpr/sexpr.h"
#include "util/status.h"

namespace classic::storage {

/// \brief Append-only log of s-expression operations, one per line.
class OperationLog {
 public:
  OperationLog() = default;
  ~OperationLog() { Close(); }

  OperationLog(const OperationLog&) = delete;
  OperationLog& operator=(const OperationLog&) = delete;

  /// \brief Opens (creating or appending to) the log file.
  Status Open(const std::string& path);

  bool is_open() const { return out_.is_open(); }
  const std::string& path() const { return path_; }

  /// \brief Appends one operation and flushes it to the OS. Returns
  /// IOError if the log is closed, if the stream is already in a failed
  /// state from an earlier error, or if the write / flush itself fails —
  /// callers see exactly which operations did not reach the OS.
  Status Append(const sexpr::Value& op);

  /// \brief Appends a pre-rendered operation line (same error contract).
  Status AppendLine(const std::string& line);

  /// \brief Discards all logged operations (checkpointing: a snapshot has
  /// made them redundant). The log stays open for appends.
  Status Truncate();

  void Close();

 private:
  std::ofstream out_;
  std::string path_;
};

/// \brief Reads every operation recorded in a log / snapshot file.
Result<std::vector<sexpr::Value>> ReadOperations(const std::string& path);

}  // namespace classic::storage
