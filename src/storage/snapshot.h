// Snapshots: dumping a knowledge base as a canonical replayable program.
//
// Everything in a CLASSIC database is re-derivable from its *base*: role
// declarations, concept definitions, individuals, rules and the base
// assertions (derived knowledge is recomputed by the propagation engine
// during replay). A snapshot is therefore simply that base, rendered in
// the operator language, ordered so that replay resolves every name:
//
//   (define-role r) / (define-attribute a)
//   (create-ind Name)          ; individuals may appear in definitions
//   (define-concept NAME <definition>)
//   (assert-rule NAME <consequent>)
//   (assert-ind Name <expression>)
//
// TEST functions are host-language closures and cannot be serialized; a
// snapshot references them by name and they must be re-registered before
// replay (exactly the paper's stance: tests live in the host language).

#pragma once

#include <string>

#include "kb/knowledge_base.h"
#include "util/status.h"

namespace classic::storage {

/// \brief Renders the knowledge base's entire base as a replayable
/// program.
std::string DumpDatabase(const KnowledgeBase& kb);

/// \brief Writes DumpDatabase(kb) to `path` (overwriting).
Status WriteSnapshotFile(const KnowledgeBase& kb, const std::string& path);

}  // namespace classic::storage
