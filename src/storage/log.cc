#include "storage/log.h"

#include <sstream>

#include "util/string_util.h"

namespace classic::storage {

Status OperationLog::Open(const std::string& path) {
  if (out_.is_open()) Close();
  out_.open(path, std::ios::out | std::ios::app);
  if (!out_) {
    return Status::IOError(StrCat("cannot open log file: ", path));
  }
  path_ = path;
  return Status::OK();
}

Status OperationLog::Append(const sexpr::Value& op) {
  return AppendLine(op.ToString());
}

Status OperationLog::AppendLine(const std::string& line) {
  if (!out_.is_open()) {
    return Status::IOError("operation log is not open");
  }
  if (!out_) {
    // A previous write failed and left the stream in a failed state; every
    // further append must keep failing loudly rather than silently dropping
    // operations (the log would otherwise have a hole in the middle).
    return Status::IOError(
        StrCat("operation log is in a failed state: ", path_));
  }
  out_ << line << '\n';
  if (!out_) {
    return Status::IOError(StrCat("write to log failed: ", path_));
  }
  out_.flush();
  if (!out_) {
    return Status::IOError(StrCat("flush of log failed: ", path_));
  }
  return Status::OK();
}

Status OperationLog::Truncate() {
  if (!out_.is_open()) {
    return Status::IOError("operation log is not open");
  }
  std::string path = path_;
  out_.close();
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_) {
    return Status::IOError(StrCat("cannot truncate log file: ", path));
  }
  path_ = path;
  return Status::OK();
}

void OperationLog::Close() {
  if (out_.is_open()) out_.close();
  path_.clear();
}

Result<std::vector<sexpr::Value>> ReadOperations(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError(StrCat("cannot open file: ", path));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return sexpr::ParseAll(buf.str());
}

}  // namespace classic::storage
