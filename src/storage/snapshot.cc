#include "storage/snapshot.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace classic::storage {

std::string DumpDatabase(const KnowledgeBase& kb) {
  const Vocabulary& vocab = kb.vocab();
  const SymbolTable& symbols = vocab.symbols();
  std::ostringstream out;

  out << "; CLASSIC snapshot (replayable operation program)\n";

  for (RoleId r = 0; r < vocab.num_roles(); ++r) {
    const RoleInfo& info = vocab.role(r);
    out << (info.attribute ? "(define-attribute " : "(define-role ")
        << symbols.Name(info.name) << ")\n";
  }

  for (IndId i = 0; i < vocab.num_individuals(); ++i) {
    const IndInfo& info = vocab.individual(i);
    if (info.kind != IndKind::kClassic) continue;  // host values are interned on demand
    out << "(create-ind " << symbols.Name(info.name) << ")\n";
  }

  for (ConceptId c = 0; c < vocab.num_concepts(); ++c) {
    const ConceptInfo& info = vocab.concept_info(c);
    out << "(define-concept " << symbols.Name(info.name) << " "
        << info.source->ToString(symbols) << ")\n";
  }

  for (const Rule& rule : kb.rules()) {
    out << "(assert-rule "
        << symbols.Name(vocab.concept_info(rule.antecedent_concept).name) << " "
        << rule.consequent_source->ToString(symbols) << ")\n";
  }

  for (IndId i = 0; i < vocab.num_individuals(); ++i) {
    const IndInfo& info = vocab.individual(i);
    if (info.kind != IndKind::kClassic) continue;
    for (const DescPtr& expr : kb.state(i).asserted) {
      out << "(assert-ind " << symbols.Name(info.name) << " "
          << expr->ToString(symbols) << ")\n";
    }
  }

  return out.str();
}

Status WriteSnapshotFile(const KnowledgeBase& kb, const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) {
    return Status::IOError(StrCat("cannot open snapshot file: ", path));
  }
  out << DumpDatabase(kb);
  out.flush();
  if (!out) {
    return Status::IOError(StrCat("snapshot write failed: ", path));
  }
  return Status::OK();
}

}  // namespace classic::storage
